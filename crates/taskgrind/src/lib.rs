//! taskgrind — a heavyweight-DBI determinacy-race analyzer for
//! task-parallel programs.
//!
//! This crate is the reproduction of the paper's contribution: a
//! grindcore (Valgrind-analog) *tool* that
//!
//! 1. records every memory access of the instrumented program into
//!    per-segment read/write **interval trees** ([`itree`], §III-B);
//! 2. builds a **segment graph** of the execution from the parallel
//!    runtime's client requests ([`graph`], §II-A/§III-A) — supporting
//!    OpenMP-style tasks with `in/out/inout/inoutset/mutexinoutset`
//!    dependences, taskwait/taskgroup/barrier/critical, parallel
//!    regions (Eq. 1), and Cilk-style spawn/sync riding the same
//!    machinery;
//! 3. runs the **determinacy-race analysis** (Algorithm 1) over all
//!    unordered segment pairs ([`analysis`]), with the §IV
//!    false-positive suppression layers: symbol ignore-lists, allocator
//!    replacement against memory recycling, TLS (TCB/DTV) records, and
//!    segment-local stack frames;
//! 4. renders **meaningful reports** with debug info and per-block
//!    allocation stack traces ([`report`], Listing 6).
//!
//! The one-call entry point is [`check_module`]:
//!
//! ```
//! use taskgrind::{check_module, TaskgrindConfig};
//!
//! let src = r#"
//! int main(void) {
//!     int *x = (int*) malloc(2 * sizeof(int));
//!     #pragma omp parallel num_threads(2)
//!     {
//!         #pragma omp single
//!         {
//!             #pragma omp task shared(x)
//!             x[0] = 42;
//!             #pragma omp task shared(x)
//!             x[0] = 43;
//!         }
//!     }
//!     return 0;
//! }
//! "#;
//! let module = guest_rt::build_single("task.c", src).unwrap();
//! let result = check_module(&module, &[], &TaskgrindConfig::default());
//! assert!(result.run.ok());
//! assert!(!result.reports.is_empty(), "the two tasks race on x[0]");
//! ```

pub mod analysis;
pub mod graph;
pub mod itree;
pub mod metrics;
pub mod reach;
pub mod report;
pub mod stream;
pub mod suppressions;
pub mod tool;

use analysis::{AnalysisOutput, SuppressOptions};
use graph::SegmentGraph;
use grindcore::{ExecMode, RunResult, Vm, VmConfig};
use reach::Reachability;
use report::{AllocBlock, RaceReport};
use std::sync::Arc;
use std::time::Instant;
use tga::module::Module;
use tool::{RecordOptions, TaskgrindTool};

/// Full configuration for a Taskgrind run.
#[derive(Clone, Debug)]
pub struct TaskgrindConfig {
    /// VM configuration (thread count, scheduler seed, quantum, ...).
    pub vm: VmConfig,
    /// Recording options (ignore/instrument lists, allocator replacement).
    pub record: RecordOptions,
    /// Suppression toggles for the analysis pass.
    pub suppress: SuppressOptions,
    /// Host threads for the analysis pass; 0 = auto
    /// (`std::thread::available_parallelism`), 1 = the paper's
    /// sequential pass.
    pub analysis_threads: usize,
    /// Use the sweep-based candidate generator (address-indexed pair
    /// generation). `--no-sweep` restores the all-pairs reference loop.
    pub sweep: bool,
    /// Streaming segment retirement: analyze online, per retirement
    /// epoch, on a background pool, freeing each segment's interval
    /// trees as soon as the happens-before frontier proves it can no
    /// longer race ([`graph::GraphBuilder::maybe_retire`]). Bounded
    /// memory, bit-identical verdicts; `false` is the batch reference.
    pub streaming: bool,
    /// Streaming backpressure: when more than this many closed segments
    /// are resident, block the guest until the analysis pool drains
    /// (0 = unlimited).
    pub max_live_segments: usize,
    /// Valgrind-style report suppressions (see [`suppressions`]).
    pub suppressions: suppressions::Suppressions,
    /// Persistent compiled-code cache attached to the recording VM:
    /// hits install previously compiled flat superblocks straight into
    /// the translation cache, and the serialized `StaticFacts` ride
    /// along so warm runs skip the static analysis too. `None` (the
    /// default) runs cold.
    pub code_cache: Option<grindcore::CodeCacheHandle>,
}

impl Default for TaskgrindConfig {
    fn default() -> Self {
        TaskgrindConfig {
            vm: VmConfig::default(),
            record: RecordOptions::default(),
            suppress: SuppressOptions::default(),
            analysis_threads: 0,
            sweep: true,
            streaming: false,
            max_live_segments: 0,
            suppressions: suppressions::Suppressions::default(),
            code_cache: None,
        }
    }
}

/// Everything a Taskgrind run produces.
pub struct TaskgrindResult {
    /// The instrumented execution's outcome.
    pub run: RunResult,
    /// The segment graph of the execution.
    pub graph: SegmentGraph,
    /// Heap blocks recorded by the allocator replacement.
    pub blocks: Vec<AllocBlock>,
    /// Raw analysis output (candidates + suppression counters).
    pub analysis: AnalysisOutput,
    /// Deduplicated reports (after suppression-file filtering).
    pub reports: Vec<RaceReport>,
    /// Reports removed by the suppression file.
    pub suppressed_reports: Vec<RaceReport>,
    /// Wall-clock seconds of the recording phase (execution only — the
    /// paper reports this separately from the analysis).
    pub recording_secs: f64,
    /// Wall-clock seconds of graph finalize + reachability + Algorithm 1.
    pub analysis_secs: f64,
    /// Host bytes used by tool structures at end of recording.
    pub tool_bytes: u64,
    /// Memory-access callbacks that actually fired during recording.
    pub accesses_recorded: u64,
    /// Access sites whose callbacks the static filter removed at
    /// translation time (0 when the filter is off).
    pub sites_pruned: u64,
    /// Access sites that kept their callbacks.
    pub sites_instrumented: u64,
    /// The static facts used for pruning, if the filter ran.
    pub static_facts: Option<Arc<tga_analysis::StaticFacts>>,
    /// Dispatch-loop telemetry from the recording VM (chain hits,
    /// probes, evictions — see [`grindcore::VmStats`]).
    pub dispatch: grindcore::VmStats,
    /// Which pair-generation engine the analysis ran ("sweep",
    /// "all-pairs", or "streaming").
    pub analysis_engine: &'static str,
    /// Host threads the analysis actually used (after resolving 0=auto).
    pub analysis_threads_used: usize,
    /// High-water count of segments with resident interval trees
    /// (batch never retires, so its peak equals its total).
    pub peak_live_segments: u64,
    /// High-water bytes of closed interval trees + pending bulk buffers.
    pub peak_tool_bytes: u64,
    /// Retirement epochs the streaming engine emitted (0 in batch).
    pub analysis_epochs: u64,
    /// Segments retired before finalize (0 in batch).
    pub retired_segments: u64,
    /// Times the `max_live_segments` backpressure blocked the guest.
    pub throttle_waits: u64,
}

impl TaskgrindResult {
    /// Number of distinct race reports.
    pub fn n_reports(&self) -> usize {
        self.reports.len()
    }

    /// Render every report in Taskgrind style.
    pub fn render_all(&self) -> String {
        self.reports.iter().map(report::render_taskgrind).collect::<Vec<_>>().join("\n")
    }
}

/// Run a compiled module under Taskgrind: record, then analyze.
pub fn check_module(module: &Module, args: &[&str], cfg: &TaskgrindConfig) -> TaskgrindResult {
    let mut record = cfg.record.clone();
    if record.static_filter && record.static_facts.is_none() {
        // The code cache stores the serialized facts next to the
        // compiled blocks; a valid cached copy skips the whole static
        // analysis (the cache key's config fingerprint covers
        // `static_concurrency`, so concurrency-on and -off runs never
        // share facts).
        let cached = cfg.code_cache.as_ref().and_then(|c| {
            let bytes = c.borrow_mut().load_facts()?;
            tga_analysis::StaticFacts::from_bytes(&bytes).ok()
        });
        let facts = cached.unwrap_or_else(|| {
            // `concurrency` only adds lock findings and guard masks on
            // top of the memory-classification facts — `safe_pcs` (and
            // with it which accesses get recorded) is identical either
            // way.
            let opts = tga_analysis::AnalyzeOpts { concurrency: record.static_concurrency };
            let facts = tga_analysis::analyze_with(module, &opts);
            if let Some(c) = &cfg.code_cache {
                c.borrow_mut().store_facts(&facts.to_bytes());
            }
            facts
        });
        record.static_facts = Some(Arc::new(facts));
    }
    let static_facts = record.static_facts.clone().filter(|_| record.static_filter);
    let tool = TaskgrindTool::new(record);
    let state = tool.state();
    let threads = analysis::resolve_threads(cfg.analysis_threads);
    // the streaming pipeline must exist before the first event: closed
    // segments detach their trees from the very first segment on
    let mut pipeline: Option<stream::Pipeline> = None;
    if cfg.streaming {
        let p = stream::Pipeline::new(threads, cfg.suppress);
        state.borrow_mut().builder.enable_streaming(Box::new(p.sink()), cfg.max_live_segments);
        pipeline = Some(p);
    }
    let mut vm = Vm::new(module.clone(), Box::new(tool), cfg.vm.clone());
    if let Some(cache) = &cfg.code_cache {
        vm.set_code_cache(cache.clone());
    }

    if tg_obs::trace::enabled() {
        use tg_obs::trace::{self, PID_GUEST, PID_HOST, TID_RETIRE};
        trace::name_track(PID_HOST, trace::host_tid(), "vm (record + dispatch)");
        for t in 0..cfg.vm.nthreads.max(1) {
            trace::name_track(PID_GUEST, t as u32, &format!("guest thread {t}"));
        }
        trace::name_track(PID_GUEST, TID_RETIRE, "segment retirement");
    }

    let t0 = Instant::now();
    let run = {
        let _sp = tg_obs::trace::host_span("recording");
        vm.run(ExecMode::Dbi, args)
    };
    let recording_secs = t0.elapsed().as_secs_f64();
    let tool_bytes = run.metrics.tool_bytes;
    let run_dispatch = run.metrics.dispatch;
    drop(vm);

    let mut rec = take_recording(state);
    rec.blocks.sort_by_key(|b| b.base);
    let module_arc = rec.module.take().unwrap_or_else(|| Arc::new(module.clone()));

    let t1 = Instant::now();
    // finalize consumes the builder — and with it the pipeline's sink,
    // so `finish` below sees end-of-stream once the final epoch drains
    let builder = std::mem::take(&mut rec.builder);
    let (graph, mem_stats) = {
        let _sp = tg_obs::trace::host_span("finalize graph");
        builder.finalize_with_stats()
    };
    let analysis = {
        let _sp = tg_obs::trace::host_span("analysis");
        if let Some(p) = pipeline {
            p.finish()
        } else {
            let reach = Reachability::compute(&graph);
            if cfg.sweep {
                analysis::run_sweep(&graph, &reach, &cfg.suppress, threads)
            } else if threads > 1 {
                analysis::run_parallel(&graph, &reach, &cfg.suppress, threads)
            } else {
                analysis::run(&graph, &reach, &cfg.suppress)
            }
        }
    };
    let reports = {
        let _sp = tg_obs::trace::host_span("report");
        report::summarize(
            &graph,
            &module_arc,
            &rec.blocks,
            &analysis.candidates,
            &cfg.record.ignore_list,
        )
    };
    let (reports, suppressed_reports) = cfg.suppressions.apply(reports);
    let analysis_secs = t1.elapsed().as_secs_f64();

    TaskgrindResult {
        run,
        graph,
        blocks: rec.blocks,
        analysis,
        reports,
        suppressed_reports,
        recording_secs,
        analysis_secs,
        tool_bytes,
        accesses_recorded: rec.accesses_recorded,
        sites_pruned: rec.sites_pruned,
        sites_instrumented: rec.sites_instrumented,
        static_facts,
        dispatch: run_dispatch,
        analysis_engine: if cfg.streaming {
            "streaming"
        } else if cfg.sweep {
            "sweep"
        } else {
            "all-pairs"
        },
        analysis_threads_used: threads,
        peak_live_segments: mem_stats.peak_live_segments,
        peak_tool_bytes: mem_stats.peak_tool_bytes,
        analysis_epochs: mem_stats.epochs,
        retired_segments: mem_stats.retired_segments,
        throttle_waits: mem_stats.throttle_waits,
    }
}

/// Extract the sole remaining owner of the recording state.
fn take_recording(state: std::rc::Rc<std::cell::RefCell<tool::Recording>>) -> tool::Recording {
    match std::rc::Rc::try_unwrap(state) {
        Ok(cell) => cell.into_inner(),
        Err(_) => panic!("recording state still shared after VM drop"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str, nthreads: u64) -> TaskgrindResult {
        let m = guest_rt::build_single("test.c", src).expect("compiles");
        let cfg = TaskgrindConfig {
            vm: VmConfig { nthreads, ..Default::default() },
            ..Default::default()
        };
        check_module(&m, &[], &cfg)
    }

    // No num_threads clause: the team size follows the VM's
    // OMP_NUM_THREADS analog, so the same source runs 1- and 2-threaded.
    const RACY_TASKS: &str = r#"
int main(void) {
    int *x = (int*) malloc(2 * sizeof(int));
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task shared(x)
            x[0] = 42;
            #pragma omp task shared(x)
            x[0] = 43;
        }
    }
    return 0;
}
"#;

    #[test]
    fn streaming_engine_matches_batch() {
        let m = guest_rt::build_single("test.c", RACY_TASKS).expect("compiles");
        let base = TaskgrindConfig {
            vm: VmConfig { nthreads: 2, ..Default::default() },
            ..Default::default()
        };
        let batch = check_module(&m, &[], &base);
        for threads in [1usize, 4] {
            let streamed = check_module(
                &m,
                &[],
                &TaskgrindConfig { streaming: true, analysis_threads: threads, ..base.clone() },
            );
            assert_eq!(streamed.analysis.candidates, batch.analysis.candidates);
            assert_eq!(streamed.analysis.raw_ranges, batch.analysis.raw_ranges);
            assert_eq!(streamed.render_all(), batch.render_all());
            assert_eq!(streamed.analysis_engine, "streaming");
            assert!(streamed.retired_segments > 0, "streaming must retire segments");
            assert!(streamed.analysis_epochs > 0);
            assert!(
                streamed.peak_live_segments <= batch.peak_live_segments,
                "streaming peak {} > batch {}",
                streamed.peak_live_segments,
                batch.peak_live_segments
            );
        }
    }

    #[test]
    fn detects_racy_tasks_multithreaded() {
        let r = check(RACY_TASKS, 2);
        assert!(r.run.ok(), "{:?}", r.run.error);
        assert!(!r.reports.is_empty(), "missing race report");
        let text = r.render_all();
        assert!(text.contains("declared independent"), "{text}");
        assert!(text.contains("test.c:"), "reports carry debug info: {text}");
        assert!(text.contains("allocated in block"), "{text}");
    }

    #[test]
    fn detects_racy_tasks_single_threaded() {
        // On one thread LLVM-style serialization makes tasks included;
        // Taskgrind still sees the declared independence.
        let r = check(RACY_TASKS, 1);
        assert!(r.run.ok(), "{:?}", r.run.error);
        // Included tasks order the continuation, so without the paper's
        // deferrable annotation the serial run hides the race...
        let serial_reports = r.n_reports();
        // ...but with the annotation (tg_set_deferrable) it reappears.
        let annotated = r#"
void tg_set_deferrable(long v);
int main(void) {
    tg_set_deferrable(1);
    int *x = (int*) malloc(2 * sizeof(int));
    #pragma omp parallel num_threads(1)
    {
        #pragma omp single
        {
            #pragma omp task shared(x)
            x[0] = 42;
            #pragma omp task shared(x)
            x[0] = 43;
        }
    }
    return 0;
}
"#;
        let r2 = check(annotated, 1);
        assert!(r2.run.ok(), "{:?}", r2.run.error);
        assert!(
            r2.n_reports() > 0,
            "deferrable annotation must expose the race single-threaded (paper V-B)"
        );
        assert_eq!(serial_reports, 0, "included tasks serialize without annotation");
    }

    #[test]
    fn dependent_tasks_do_not_report() {
        let src = r#"
int main(void) {
    int x = 0;
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single
        {
            #pragma omp task depend(out: x) shared(x)
            x = 1;
            #pragma omp task depend(inout: x) shared(x)
            x = x + 1;
        }
    }
    return x;
}
"#;
        let r = check(src, 2);
        assert!(r.run.ok(), "{:?}", r.run.error);
        assert_eq!(r.n_reports(), 0, "{}", r.render_all());
    }

    #[test]
    fn taskwait_protected_is_clean() {
        let src = r#"
int main(void) {
    int x = 0;
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single
        {
            #pragma omp task shared(x)
            x = 1;
            #pragma omp taskwait
            x = x + 1;
        }
    }
    return x;
}
"#;
        let r = check(src, 2);
        assert_eq!(r.n_reports(), 0, "{}", r.render_all());
    }

    #[test]
    fn missing_taskwait_reports() {
        let src = r#"
int main(void) {
    int x = 0;
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single
        {
            #pragma omp task shared(x)
            x = 1;
            x = x + 1;   // concurrent with the task
        }
    }
    return x;
}
"#;
        let r = check(src, 2);
        assert!(r.n_reports() > 0);
    }

    #[test]
    fn runtime_accesses_are_ignored() {
        // A clean program: all queue/lock traffic of libomp must be
        // filtered by the ignore-list (IV-A), leaving zero reports.
        let src = r#"
int main(void) {
    int a[32];
    #pragma omp parallel num_threads(4)
    {
        #pragma omp single
        {
            #pragma omp taskloop grainsize(8) shared(a)
            for (int i = 0; i < 32; i++) a[i] = i;
        }
    }
    return a[7];
}
"#;
        let r = check(src, 4);
        assert!(r.run.ok(), "{:?}", r.run.error);
        assert_eq!(r.n_reports(), 0, "{}", r.render_all());
        assert!(r.analysis.pairs_checked > 0);
    }

    #[test]
    fn memory_recycling_suppressed_by_allocator_replacement() {
        // TMB 1000: two independent tasks malloc/write/free — the guest
        // allocator would hand both the same address.
        let src = r#"
int main(void) {
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single
        {
            for (int i = 0; i < 2; i++) {
                #pragma omp task
                {
                    int *x = (int*) malloc(4);
                    x[0] = 1;
                    free(x);
                }
            }
        }
    }
    return 0;
}
"#;
        let r = check(src, 1);
        assert!(r.run.ok(), "{:?}", r.run.error);
        assert_eq!(r.n_reports(), 0, "replacement kills recycling FPs: {}", r.render_all());
        assert!(r.blocks.len() >= 2, "each task got its own block");

        // Naive mode (no replacement): the recycling FP reappears.
        let m = guest_rt::build_single("test.c", src).unwrap();
        let cfg2 = TaskgrindConfig {
            vm: VmConfig { nthreads: 2, ..Default::default() },
            record: RecordOptions { replace_allocator: false, ..Default::default() },
            ..Default::default()
        };
        let naive2 = check_module(&m, &[], &cfg2);
        assert!(
            naive2.n_reports() > 0,
            "without replacement, recycling shows up as a false positive"
        );
    }

    #[test]
    fn runtime_allocator_replacement_kills_payload_recycling() {
        // Task capture payloads come from the runtime's built-in
        // allocator (__kmp_fast_alloc). The paper's Taskgrind does not
        // cover built-in allocators ("kept as future work", IV-B):
        // with replacement off, sequential independent tasks recycle
        // payload blocks and alias — a false positive. Our future-work
        // implementation replaces them too.
        let src = r#"
void tg_set_deferrable(long v);
int sink;
int main(void) {
    tg_set_deferrable(1);
    #pragma omp parallel num_threads(1)
    {
        #pragma omp single
        {
            for (int i = 0; i < 2; i++) {
                int v = i;
                #pragma omp task firstprivate(v)
                sink = v;   // reads its payload copy of v
            }
        }
    }
    return 0;
}
"#;
        let m = guest_rt::build_single("payload.c", src).unwrap();
        // full tool: clean except the intended sink conflict? sink is a
        // genuine shared write conflict between the two tasks — exclude
        // it by checking only heap-region reports.
        let count_heap =
            |r: &TaskgrindResult| r.reports.iter().filter(|rep| rep.region == "heap").count();
        let full = check_module(&m, &[], &TaskgrindConfig::default());
        assert_eq!(count_heap(&full), 0, "{}", full.render_all());

        let limited = TaskgrindConfig {
            record: RecordOptions { replace_runtime_allocator: false, ..Default::default() },
            ..Default::default()
        };
        let lim = check_module(&m, &[], &limited);
        assert!(
            count_heap(&lim) > 0,
            "paper limitation: recycled payloads alias across tasks: {}",
            lim.render_all()
        );
    }

    #[test]
    fn suppression_files_filter_reports() {
        let m = guest_rt::build_single("test.c", RACY_TASKS).unwrap();
        let mut cfg = TaskgrindConfig {
            vm: VmConfig { nthreads: 2, ..Default::default() },
            ..Default::default()
        };
        let before = check_module(&m, &[], &cfg);
        assert!(before.n_reports() > 0);
        cfg.suppressions = suppressions::Suppressions::parse("test.c:* *").unwrap();
        let after = check_module(&m, &[], &cfg);
        assert_eq!(after.n_reports(), 0);
        assert_eq!(after.suppressed_reports.len(), before.n_reports());
        // the raw analysis is unchanged — only reporting is filtered
        assert_eq!(after.analysis.candidates.len(), before.analysis.candidates.len());
    }

    #[test]
    fn timing_and_memory_are_reported() {
        let r = check(RACY_TASKS, 2);
        assert!(r.recording_secs > 0.0);
        assert!(r.analysis_secs >= 0.0);
        assert!(r.tool_bytes > 0);
        assert!(r.graph.n_nodes() > 3);
    }
}
