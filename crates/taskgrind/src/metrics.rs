//! Publish a [`TaskgrindResult`] into the tg-obs metrics registry and
//! render the CLI's `==` summary block from it.
//!
//! One source of truth: every counter the CLI prints is read back out of
//! the registry, so the human-readable summary and the `--metrics-json`
//! dump can never disagree. This also merges the two historically
//! separate `== analysis:` lines (PR 3's engine/pairs line and PR 4's
//! streaming line) into a single block.

use crate::TaskgrindResult;
use tg_obs::Registry;

/// Publish every counter of `r` (plus the VM execution metrics) into
/// `reg` under the `taskgrind.*`, `analysis.*`, `stream.*`, `filter.*`,
/// `vm.*` and `dispatch.*` namespaces.
pub fn publish(r: &TaskgrindResult, reg: &mut Registry) {
    reg.set_u64("taskgrind.reports", r.n_reports() as u64);
    reg.set_u64("taskgrind.suppressed_reports", r.suppressed_reports.len() as u64);
    reg.set_u64("taskgrind.candidates", r.analysis.candidates.len() as u64);
    reg.set_u64("taskgrind.segments", r.graph.n_nodes() as u64);
    reg.set_u64("taskgrind.alloc_blocks", r.blocks.len() as u64);
    reg.set_f64("taskgrind.recording_secs", r.recording_secs);
    reg.set_f64("taskgrind.analysis_secs", r.analysis_secs);
    reg.set_u64("taskgrind.tool_bytes", r.tool_bytes);

    reg.set_str("analysis.engine", r.analysis_engine);
    reg.set_u64("analysis.threads", r.analysis_threads_used as u64);
    reg.set_u64("analysis.pairs_checked", r.analysis.pairs_checked);
    reg.set_u64("analysis.unordered_pairs", r.analysis.unordered_pairs);
    reg.set_u64("analysis.raw_ranges", r.analysis.raw_ranges);
    reg.set_u64("analysis.suppressed_locks", r.analysis.suppressed_locks);
    reg.set_u64("analysis.suppressed_mutex", r.analysis.suppressed_mutex);
    reg.set_u64("analysis.suppressed_tls", r.analysis.suppressed_tls);
    reg.set_u64("analysis.suppressed_stack", r.analysis.suppressed_stack);
    reg.set_u64("analysis.suppressed_static", r.analysis.suppressed_static);

    reg.set_u64("stream.epochs", r.analysis_epochs);
    reg.set_u64("stream.retired_segments", r.retired_segments);
    reg.set_u64("stream.throttle_waits", r.throttle_waits);
    reg.set_u64("stream.peak_live_segments", r.peak_live_segments);
    reg.set_u64("stream.peak_tool_bytes", r.peak_tool_bytes);

    reg.set_bool("filter.enabled", r.static_facts.is_some());
    reg.set_u64("filter.sites_pruned", r.sites_pruned);
    reg.set_u64("filter.sites_instrumented", r.sites_instrumented);
    reg.set_u64("filter.accesses_recorded", r.accesses_recorded);
    reg.set_u64(
        "filter.guarded_sites",
        r.static_facts.as_ref().map(|f| f.guarded.len() as u64).unwrap_or(0),
    );

    r.run.metrics.publish(reg);
}

/// Render the `==` summary block from a published registry. Line
/// contents come *only* from registry lookups, so anything printed here
/// is guaranteed to appear in `--metrics-json` too.
pub fn render_summary(reg: &Registry) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== taskgrind: {} report(s) ({} raw candidates) | recording {:.3}s, analysis {:.3}s | {} segments, {} instrs\n",
        reg.u64("taskgrind.reports"),
        reg.u64("taskgrind.candidates"),
        reg.f64("taskgrind.recording_secs"),
        reg.f64("taskgrind.analysis_secs"),
        reg.u64("taskgrind.segments"),
        reg.u64("vm.instrs"),
    ));
    out.push_str(&format!(
        "== analysis: engine {} | {} thread(s) | {} candidate pair(s), {} unordered | {} raw range(s) | {} epoch(s), {} retired, {} throttle wait(s) | peak {} live segment(s), {} high-water byte(s) | {:.3}s\n",
        reg.str("analysis.engine"),
        reg.u64("analysis.threads"),
        reg.u64("analysis.pairs_checked"),
        reg.u64("analysis.unordered_pairs"),
        reg.u64("analysis.raw_ranges"),
        reg.u64("stream.epochs"),
        reg.u64("stream.retired_segments"),
        reg.u64("stream.throttle_waits"),
        reg.u64("stream.peak_live_segments"),
        reg.u64("stream.peak_tool_bytes"),
        reg.f64("taskgrind.analysis_secs"),
    ));
    out.push_str(&format!(
        "== static filter: {} | {} site(s) pruned, {} instrumented, {} access(es) recorded\n",
        if reg.bool("filter.enabled") { "on" } else { "off" },
        reg.u64("filter.sites_pruned"),
        reg.u64("filter.sites_instrumented"),
        reg.u64("filter.accesses_recorded"),
    ));
    out.push_str(&format!(
        "== dispatch: chaining {} | {} chain hit(s) ({} ibtc), {} probe(s), {} translation(s), {} eviction(s), {} discard(s)\n",
        if reg.bool("engine.chaining") { "on" } else { "off" },
        reg.u64("dispatch.chain_hits"),
        reg.u64("dispatch.ibtc_hits"),
        reg.u64("dispatch.probes"),
        reg.u64("vm.translations"),
        reg.u64("dispatch.evictions"),
        reg.u64("dispatch.discarded_blocks"),
    ));
    // Rendered only when background compile workers ran, so synchronous
    // runs keep the historical four-line summary shape (the differential
    // suite asserts on it).
    if reg.u64("compile.workers") > 0 {
        out.push_str(&format!(
            "== compile: {} worker(s) | {} queued, {} inline, {} stale | {} promoted, {} fallback execution(s) | peak queue {}\n",
            reg.u64("compile.workers"),
            reg.u64("compile.queued"),
            reg.u64("compile.inline"),
            reg.u64("compile.stale"),
            reg.u64("compile.installed"),
            reg.u64("compile.fallback_executions"),
            reg.u64("compile.queue_depth"),
        ));
    }
    // Rendered only when a persistent code cache was attached, so
    // cache-less runs keep the historical four-line summary shape (the
    // differential suite asserts on it).
    if reg.bool("cache.enabled") {
        out.push_str(&format!(
            "== code cache: {} hit(s), {} miss(es) | {} byte(s) loaded, {} stored | load {:.3}ms, store {:.3}ms | {} invalidated\n",
            reg.u64("cache.hits"),
            reg.u64("cache.misses"),
            reg.u64("cache.bytes_loaded"),
            reg.u64("cache.bytes_stored"),
            reg.f64("cache.load_ms"),
            reg.f64("cache.store_ms"),
            reg.u64("cache.invalidations"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_module, TaskgrindConfig};
    use grindcore::VmConfig;

    #[test]
    fn summary_is_rendered_from_registry_only() {
        let src = r#"
int main(void) {
    int *x = (int*) malloc(2 * sizeof(int));
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task shared(x)
            x[0] = 42;
            #pragma omp task shared(x)
            x[0] = 43;
        }
    }
    return 0;
}
"#;
        let m = guest_rt::build_single("test.c", src).unwrap();
        let cfg = TaskgrindConfig {
            vm: VmConfig { nthreads: 2, ..Default::default() },
            ..Default::default()
        };
        let r = check_module(&m, &[], &cfg);
        let mut reg = Registry::new();
        publish(&r, &mut reg);
        reg.set_bool("engine.chaining", true);
        let s = render_summary(&reg);
        // exactly one merged analysis line
        assert_eq!(s.matches("== analysis:").count(), 1, "{s}");
        assert!(s.contains(&format!("engine {}", r.analysis_engine)), "{s}");
        assert!(s.contains(&format!("{} candidate pair(s)", r.analysis.pairs_checked)), "{s}");
        assert!(s.contains(&format!("{} epoch(s)", r.analysis_epochs)), "{s}");
        assert!(
            s.contains(&format!("{} segments, {} instrs", r.graph.n_nodes(), r.run.metrics.instrs)),
            "{s}"
        );
        // the machine-readable dump carries everything the summary shows
        let json = reg.to_json();
        for key in [
            "taskgrind.reports",
            "analysis.pairs_checked",
            "analysis.unordered_pairs",
            "stream.epochs",
            "stream.peak_tool_bytes",
            "filter.sites_pruned",
            "dispatch.chain_hits",
            "vm.instrs",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "metrics json missing {key}");
        }
    }

    #[test]
    fn compile_line_appears_only_with_workers() {
        let mut reg = Registry::new();
        // A synchronous run: no workers, no compile line.
        assert_eq!(render_summary(&reg).matches("== compile:").count(), 0);
        reg.set_u64("compile.workers", 2);
        reg.set_u64("compile.queued", 7);
        reg.set_u64("compile.installed", 6);
        reg.set_u64("compile.fallback_executions", 11);
        let s = render_summary(&reg);
        assert_eq!(s.matches("== compile:").count(), 1, "{s}");
        assert!(s.contains("2 worker(s)"), "{s}");
        assert!(s.contains("7 queued"), "{s}");
        assert!(s.contains("11 fallback execution(s)"), "{s}");
    }
}
