//! Valgrind-style suppression files for race reports.
//!
//! Valgrind tools read `--suppressions=` files to silence known
//! reports; Taskgrind's equivalent matches the two segment sites of a
//! report against glob patterns (`*` suffix wildcard, as in
//! ignore-lists). Format, one rule per line:
//!
//! ```text
//! # comment
//! task.c:8  task.c:11      # exact pair (order-insensitive)
//! lulesh.c:*  *            # anything involving lulesh.c
//! ```

use crate::report::RaceReport;
use grindcore::tool::pattern_matches;

/// One suppression rule: a pair of site patterns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    pub a: String,
    pub b: String,
}

/// A parsed suppression set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Suppressions {
    pub rules: Vec<Rule>,
}

/// A malformed suppression line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "suppression file line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl Suppressions {
    /// Parse the line-based format.
    pub fn parse(text: &str) -> Result<Suppressions, ParseError> {
        let mut rules = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (a, b) = match (parts.next(), parts.next(), parts.next()) {
                (Some(a), Some(b), None) => (a, b),
                _ => {
                    return Err(ParseError {
                        line: i + 1,
                        msg: format!("expected two site patterns, got `{line}`"),
                    })
                }
            };
            rules.push(Rule { a: a.to_string(), b: b.to_string() });
        }
        Ok(Suppressions { rules })
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Does any rule match this report (in either site order)?
    pub fn matches(&self, report: &RaceReport) -> bool {
        self.rules.iter().any(|r| {
            (pattern_matches(&r.a, &report.site1) && pattern_matches(&r.b, &report.site2))
                || (pattern_matches(&r.a, &report.site2) && pattern_matches(&r.b, &report.site1))
        })
    }

    /// Split reports into (kept, suppressed).
    pub fn apply(&self, reports: Vec<RaceReport>) -> (Vec<RaceReport>, Vec<RaceReport>) {
        if self.is_empty() {
            return (reports, Vec::new());
        }
        reports.into_iter().partition(|r| !self.matches(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(s1: &str, s2: &str) -> RaceReport {
        RaceReport {
            site1: s1.into(),
            site2: s2.into(),
            example_addr: 0x1000,
            example_bytes: 8,
            occurrences: 1,
            block: None,
            region: "heap",
        }
    }

    #[test]
    fn parse_rules_and_comments() {
        let s = Suppressions::parse(
            "# known issue\n task.c:8 task.c:11\n\nlulesh.c:* *   # everything there\n",
        )
        .unwrap();
        assert_eq!(s.rules.len(), 2);
        assert_eq!(s.rules[0], Rule { a: "task.c:8".into(), b: "task.c:11".into() });
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = Suppressions::parse("ok.c:1 ok.c:2\nonly-one-field\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = Suppressions::parse("a b c\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn matching_is_order_insensitive() {
        let s = Suppressions::parse("task.c:8 task.c:11").unwrap();
        assert!(s.matches(&report("task.c:8", "task.c:11")));
        assert!(s.matches(&report("task.c:11", "task.c:8")));
        assert!(!s.matches(&report("task.c:8", "task.c:12")));
    }

    #[test]
    fn globs_match_prefixes() {
        let s = Suppressions::parse("lulesh.c:* *").unwrap();
        assert!(s.matches(&report("lulesh.c:42", "other.c:1")));
        assert!(s.matches(&report("other.c:1", "lulesh.c:42")));
        assert!(!s.matches(&report("other.c:1", "third.c:9")));
    }

    #[test]
    fn apply_partitions() {
        let s = Suppressions::parse("a.c:* *").unwrap();
        let (kept, suppressed) = s.apply(vec![report("a.c:1", "b.c:2"), report("c.c:3", "d.c:4")]);
        assert_eq!(kept.len(), 1);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(kept[0].site1, "c.c:3");
    }
}
