//! The streaming analysis pipeline: bounded-memory, online race
//! analysis concurrent with guest execution.
//!
//! The batch engines record every segment's interval trees until the
//! program exits, then analyze — the ~6× RSS overhead and O(s³) growth
//! of the paper's Table II / Fig. 4. Streaming mode instead *retires*
//! segments as soon as the happens-before frontier proves they can no
//! longer race with any future segment (see
//! [`crate::graph::GraphBuilder::maybe_retire`] for the frontier rule):
//! the retired segments' trees are moved out of the graph into an
//! [`Epoch`] message, shipped over a bounded channel to a pool of
//! analysis workers, and freed once the epoch is analyzed. Only the
//! skeletal graph (nodes, edges, task records) survives to program end.
//!
//! **Epoch contract.** Epoch `e` carries the retire set `S_e` (trees
//! moved, `retired = true`) plus every still-closed unretired segment
//! `C_e` (shared `Arc` snapshots, `retired = false`), and a snapshot of
//! the edge list at emission. [`analyze_epoch`] generates footprint-
//! overlapping pairs with the PR 3 sweep, keeps only pairs touching
//! `S_e`, filters ordered pairs against reachability over the epoch
//! edge snapshot, and runs the shared suppression pipeline
//! (`analysis::analyze_pair_views`). The frontier rule
//! guarantees that (a) every pair analyzed at epoch `e` has the same
//! ordered/unordered verdict under the epoch snapshot as under the
//! final graph, and (b) every pair *not* analyzed at any epoch — one
//! member retired before the other closed — is ordered in the final
//! graph. Hence the union of per-epoch outputs equals the batch
//! engine's output bit for bit: same candidates, same raw-range and
//! suppression counters, and (after the canonical candidate sort) the
//! same rendered reports.
//!
//! **Backpressure.** The channel is bounded: when analysis falls behind,
//! `submit` blocks the (single-threaded, deterministically scheduled)
//! VM, throttling the guest without perturbing the schedule digest. The
//! `--max-live-segments` knob additionally forces a drain when too many
//! closed segments are resident.

use crate::analysis::{self, AnalysisOutput, SegView, SuppressOptions};
use crate::graph::{SegId, TaskId};
use crate::itree::IntervalTree;
use crate::reach::Reachability;
use grindcore::Tid;
use std::collections::{HashMap, HashSet};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};

/// A closed segment's interval trees, detached from the graph so the
/// graph side frees its memory the moment the analysis side drops the
/// last `Arc`.
pub struct SegSnapshot {
    pub reads: IntervalTree,
    pub writes: IntervalTree,
}

impl SegSnapshot {
    pub fn heap_bytes(&self) -> u64 {
        self.reads.heap_bytes() + self.writes.heap_bytes()
    }
}

/// One segment inside an epoch message: suppression metadata plus the
/// tree snapshot. `retired` marks membership of the epoch's retire set.
#[derive(Clone)]
pub struct EpochSeg {
    pub id: SegId,
    pub retired: bool,
    pub thread: Tid,
    pub start_sp: u64,
    pub stack_low: u64,
    pub stack_high: u64,
    pub tls_base: u64,
    pub tls_size: u64,
    pub tls_gen: u64,
    pub locks: Vec<u64>,
    pub task: Option<TaskId>,
    /// `mutex_objs` of the owning task (final by close time: dependences
    /// register before the task first runs).
    pub mutex_objs: Vec<u64>,
    /// Segment guard mask (see [`SegView::guard_mask`]).
    pub guard_mask: u64,
    pub trees: Arc<SegSnapshot>,
}

impl EpochSeg {
    fn view(&self) -> SegView<'_> {
        SegView {
            id: self.id,
            reads: &self.trees.reads,
            writes: &self.trees.writes,
            locks: &self.locks,
            thread: self.thread,
            start_sp: self.start_sp,
            stack_low: self.stack_low,
            stack_high: self.stack_high,
            tls_base: self.tls_base,
            tls_size: self.tls_size,
            tls_gen: self.tls_gen,
            task: self.task,
            mutex_objs: &self.mutex_objs,
            guard_mask: self.guard_mask,
        }
    }
}

/// One retirement epoch, shipped from the builder to the analysis pool.
pub struct Epoch {
    /// Monotonic epoch number (diagnostics only).
    pub seq: u64,
    /// Node count at emission, sizing the reachability closure.
    pub n_nodes: u32,
    /// Edge-list snapshot at emission. The frontier rule makes verdicts
    /// on the pairs analyzed here stable under all later edge arrivals.
    pub edges: Arc<Vec<(SegId, SegId)>>,
    /// Retire set first, then the still-live closed set.
    pub segs: Vec<EpochSeg>,
}

/// Where [`crate::graph::GraphBuilder`] ships retirement epochs.
pub trait EpochSink {
    /// Hand one epoch to the analysis side. May block (bounded channel):
    /// that block is the streaming engine's guest throttle.
    fn submit(&mut self, e: Epoch);
    /// Block until every submitted epoch has been analyzed.
    fn wait_drained(&mut self);
}

/// Analyze one epoch. Pure function of the message — callable from pool
/// workers and (synchronously) from tests.
pub fn analyze_epoch(e: &Epoch, opts: &SuppressOptions) -> AnalysisOutput {
    let mut ivs = Vec::new();
    let mut by_id: HashMap<SegId, &EpochSeg> = HashMap::with_capacity(e.segs.len());
    for s in &e.segs {
        by_id.insert(s.id, s);
        analysis::flatten_intervals(&mut ivs, s.id, &s.trees.reads, &s.trees.writes);
    }
    ivs.sort_unstable_by_key(|iv| (iv.lo, iv.hi, iv.seg, iv.write));
    let mut set: HashSet<(SegId, SegId)> = HashSet::new();
    analysis::sweep_pairs(&ivs, &mut set);
    // Pairs fully inside the live set are deferred: they re-emerge at
    // the epoch where their first member retires, so each overlapping
    // pair is analyzed exactly once across the run.
    let mut pairs: Vec<(SegId, SegId)> =
        set.into_iter().filter(|&(a, b)| by_id[&a].retired || by_id[&b].retired).collect();
    pairs.sort_unstable();

    let reach = Reachability::compute_edges(e.n_nodes as usize, &e.edges);
    let mut out = AnalysisOutput { pairs_checked: pairs.len() as u64, ..Default::default() };
    for (s1, s2) in pairs {
        if reach.ordered(s1, s2) {
            continue;
        }
        out.unordered_pairs += 1;
        analysis::analyze_pair_views(opts, &by_id[&s1].view(), &by_id[&s2].view(), &mut out);
    }
    out
}

/// Background analysis pool: a bounded epoch channel fanned out to
/// worker threads, each folding its epochs into a local partial that
/// [`Pipeline::finish`] merges.
pub struct Pipeline {
    tx: Option<SyncSender<Epoch>>,
    inflight: Arc<(Mutex<usize>, Condvar)>,
    workers: Vec<std::thread::JoinHandle<AnalysisOutput>>,
}

/// Bounded channel capacity: small enough that a stalled analysis pool
/// throttles the guest promptly, large enough to ride out bursts.
const CHANNEL_CAP: usize = 8;

impl Pipeline {
    pub fn new(threads: usize, opts: SuppressOptions) -> Pipeline {
        let (tx, rx) = sync_channel::<Epoch>(CHANNEL_CAP);
        let rx = Arc::new(Mutex::new(rx));
        let inflight: Arc<(Mutex<usize>, Condvar)> = Arc::new((Mutex::new(0), Condvar::new()));
        let workers = (0..threads.max(1))
            .map(|w| {
                let rx: Arc<Mutex<Receiver<Epoch>>> = rx.clone();
                let inflight = inflight.clone();
                std::thread::spawn(move || {
                    if tg_obs::trace::enabled() {
                        tg_obs::trace::name_track(
                            tg_obs::trace::PID_HOST,
                            tg_obs::trace::host_tid(),
                            &format!("analysis worker {w}"),
                        );
                    }
                    let mut local = AnalysisOutput::default();
                    loop {
                        // hold the lock only to receive, not to analyze
                        let msg = rx.lock().unwrap().recv();
                        let Ok(e) = msg else { break };
                        {
                            let _sp = if tg_obs::trace::enabled() {
                                tg_obs::trace::host_span_args(
                                    "analyze epoch",
                                    vec![("seq", e.seq), ("segs", e.segs.len() as u64)],
                                )
                            } else {
                                tg_obs::trace::SpanGuard::inactive()
                            };
                            local.absorb(analyze_epoch(&e, &opts));
                            drop(e); // free the retired trees before signalling
                        }
                        let (m, cv) = &*inflight;
                        *m.lock().unwrap() -= 1;
                        cv.notify_all();
                    }
                    local
                })
            })
            .collect();
        Pipeline { tx: Some(tx), inflight, workers }
    }

    /// A sink handle for the graph builder. The builder must be dropped
    /// (its sink with it) before [`Pipeline::finish`], or the workers
    /// never see end-of-stream.
    pub fn sink(&self) -> PipelineSink {
        PipelineSink { tx: self.tx.clone().unwrap(), inflight: self.inflight.clone() }
    }

    /// Close the stream, join the workers, and merge their partials into
    /// the final output (canonically sorted, ready for reporting).
    pub fn finish(mut self) -> AnalysisOutput {
        self.tx = None;
        let mut out = AnalysisOutput::default();
        for w in self.workers {
            out.absorb(w.join().expect("analysis worker panicked"));
        }
        analysis::sort_candidates(&mut out.candidates);
        out
    }
}

/// The builder-side handle of a [`Pipeline`].
pub struct PipelineSink {
    tx: SyncSender<Epoch>,
    inflight: Arc<(Mutex<usize>, Condvar)>,
}

impl EpochSink for PipelineSink {
    fn submit(&mut self, e: Epoch) {
        *self.inflight.0.lock().unwrap() += 1;
        if self.tx.send(e).is_err() {
            // all workers died (only possible after a worker panic);
            // roll back so wait_drained cannot hang
            let (m, cv) = &*self.inflight;
            *m.lock().unwrap() -= 1;
            cv.notify_all();
        }
    }

    fn wait_drained(&mut self) {
        let (m, cv) = &*self.inflight;
        let mut g = m.lock().unwrap();
        while *g > 0 {
            g = cv.wait(g).unwrap();
        }
    }
}

/// A synchronous sink analyzing every epoch on the submitting thread —
/// the deterministic single-threaded reference used by unit tests.
pub struct InlineSink {
    opts: SuppressOptions,
    out: Arc<Mutex<AnalysisOutput>>,
}

impl InlineSink {
    pub fn new(opts: SuppressOptions) -> (InlineSink, Arc<Mutex<AnalysisOutput>>) {
        let out = Arc::new(Mutex::new(AnalysisOutput::default()));
        (InlineSink { opts, out: out.clone() }, out)
    }

    /// Extract the merged output, canonically sorted.
    pub fn take(out: &Arc<Mutex<AnalysisOutput>>) -> AnalysisOutput {
        let mut o = std::mem::take(&mut *out.lock().unwrap());
        analysis::sort_candidates(&mut o.candidates);
        o
    }
}

impl EpochSink for InlineSink {
    fn submit(&mut self, e: Epoch) {
        let p = analyze_epoch(&e, &self.opts);
        self.out.lock().unwrap().absorb(p);
    }

    fn wait_drained(&mut self) {}
}
