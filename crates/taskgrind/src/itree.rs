//! Per-segment access interval trees (paper §III-B, Fig. 3).
//!
//! Each segment carries two interval trees — one for reads, one for
//! writes. Dense memory accesses accumulate compactly: inserting an
//! interval merges it with any overlapping or adjacent intervals, so a
//! segment that sweeps an array stores one interval, not one entry per
//! element. All operations are `O(log n)` in the number of stored
//! disjoint intervals (the tree is a balanced ordered tree keyed by
//! interval start).
//!
//! Intervals are half-open byte ranges `[lo, hi)`.

use std::collections::BTreeMap;

/// A set of disjoint half-open intervals with merge-on-insert.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalTree {
    /// start → end (end exclusive); invariant: disjoint, non-adjacent.
    map: BTreeMap<u64, u64>,
    /// Total number of raw insertions (accesses recorded).
    inserts: u64,
}

impl IntervalTree {
    pub fn new() -> IntervalTree {
        IntervalTree::default()
    }

    /// Number of disjoint intervals stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Raw accesses recorded (before merging).
    pub fn accesses(&self) -> u64 {
        self.inserts
    }

    /// Total bytes covered.
    pub fn covered_bytes(&self) -> u64 {
        self.map.iter().map(|(lo, hi)| hi - lo).sum()
    }

    /// Approximate host memory held by this tree, for Table II's memory
    /// accounting.
    pub fn heap_bytes(&self) -> u64 {
        // BTreeMap node overhead approximation: 2 u64 per entry + node
        // headers; 32 bytes/entry is a fair estimate.
        self.map.len() as u64 * 32
    }

    /// Insert `[lo, hi)`, merging with overlapping or adjacent intervals.
    pub fn insert(&mut self, lo: u64, hi: u64) {
        if lo >= hi {
            return;
        }
        self.inserts += 1;
        self.merge_in(lo, hi);
    }

    /// Bulk-load a batch of raw intervals recorded elsewhere (the
    /// append-only access buffers of the bulk-ingestion path): one sort,
    /// one linear coalesce, and — when the tree is still empty, the
    /// common case for a segment drained exactly once at close — a
    /// direct sorted build of the underlying map instead of `len(events)`
    /// log-tree inserts. `raw_accesses` is the number of original
    /// accesses the batch represents (the buffer may have absorbed dense
    /// runs inline), credited to [`Self::accesses`].
    pub fn bulk_extend(&mut self, mut events: Vec<(u64, u64)>, raw_accesses: u64) {
        self.inserts += raw_accesses;
        events.retain(|&(lo, hi)| lo < hi);
        if events.is_empty() {
            return;
        }
        events.sort_unstable();
        let mut coalesced: Vec<(u64, u64)> = Vec::with_capacity(events.len());
        for (lo, hi) in events {
            match coalesced.last_mut() {
                // overlapping or adjacent: extend in place
                Some((_, phi)) if lo <= *phi => *phi = (*phi).max(hi),
                _ => coalesced.push((lo, hi)),
            }
        }
        if self.map.is_empty() {
            self.map = coalesced.into_iter().collect();
        } else {
            for (lo, hi) in coalesced {
                self.merge_in(lo, hi);
            }
        }
    }

    /// Merge `[lo, hi)` into the map without touching the access count.
    fn merge_in(&mut self, lo: u64, hi: u64) {
        let mut new_lo = lo;
        let mut new_hi = hi;
        // Absorb a predecessor that touches [lo, hi).
        if let Some((&plo, &phi)) = self.map.range(..=lo).next_back() {
            if phi >= lo {
                if phi >= hi {
                    return; // fully contained
                }
                new_lo = plo;
                new_hi = new_hi.max(phi);
                self.map.remove(&plo);
            }
        }
        // Absorb successors that start within or adjacent to the range.
        while let Some((&slo, &shi)) = self.map.range(new_lo..).next() {
            if slo > new_hi {
                break;
            }
            new_hi = new_hi.max(shi);
            self.map.remove(&slo);
        }
        self.map.insert(new_lo, new_hi);
    }

    /// Does any stored interval overlap `[lo, hi)`?
    pub fn overlaps(&self, lo: u64, hi: u64) -> bool {
        if lo >= hi {
            return false;
        }
        if let Some((_, &phi)) = self.map.range(..=lo).next_back() {
            if phi > lo {
                return true;
            }
        }
        self.map.range(lo..hi).next().is_some()
    }

    /// Does the tree contain the byte at `addr`?
    pub fn contains(&self, addr: u64) -> bool {
        self.overlaps(addr, addr + 1)
    }

    /// Iterate the disjoint intervals in order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(&lo, &hi)| (lo, hi))
    }

    /// Intersect with another tree, yielding every overlapping byte
    /// range. This is the core of Algorithm 1's
    /// `s1.w ∩ (s2.r ∪ s2.w)` test. Runs in
    /// `O(min(n,m) · log(max(n,m)))` by probing the smaller tree's
    /// intervals against the larger.
    pub fn intersect(&self, other: &IntervalTree) -> Vec<(u64, u64)> {
        let (small, big) = if self.len() <= other.len() { (self, other) } else { (other, self) };
        let mut out = Vec::new();
        for (lo, hi) in small.iter() {
            // predecessor that may reach into [lo, hi)
            if let Some((&plo, &phi)) = big.map.range(..=lo).next_back() {
                if phi > lo {
                    out.push((lo.max(plo), hi.min(phi)));
                }
            }
            for (&slo, &shi) in
                big.map.range((std::ops::Bound::Excluded(lo), std::ops::Bound::Excluded(hi)))
            {
                out.push((slo, hi.min(shi)));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// True if any byte overlaps between the two trees (early-exit form).
    pub fn intersects(&self, other: &IntervalTree) -> bool {
        let (small, big) = if self.len() <= other.len() { (self, other) } else { (other, self) };
        for (lo, hi) in small.iter() {
            if big.overlaps(lo, hi) {
                return true;
            }
        }
        false
    }

    /// Union of two trees (used to form `s2.r ∪ s2.w` without mutating).
    pub fn union(&self, other: &IntervalTree) -> IntervalTree {
        let (mut out, rest) =
            if self.len() >= other.len() { (self.clone(), other) } else { (other.clone(), self) };
        for (lo, hi) in rest.iter() {
            out.insert(lo, hi);
        }
        out
    }
}

/// A naive interval set (sorted scan) with identical semantics — the
/// baseline for the E9 ablation bench and the property-test oracle.
#[derive(Clone, Debug, Default)]
pub struct NaiveIntervalSet {
    items: Vec<(u64, u64)>,
}

impl NaiveIntervalSet {
    pub fn insert(&mut self, lo: u64, hi: u64) {
        if lo >= hi {
            return;
        }
        self.items.push((lo, hi));
    }

    pub fn contains(&self, addr: u64) -> bool {
        self.items.iter().any(|&(lo, hi)| addr >= lo && addr < hi)
    }

    pub fn overlaps(&self, lo: u64, hi: u64) -> bool {
        self.items.iter().any(|&(ilo, ihi)| ilo < hi && lo < ihi)
    }

    pub fn intersects(&self, other: &NaiveIntervalSet) -> bool {
        self.items.iter().any(|&(lo, hi)| other.overlaps(lo, hi))
    }

    /// Normalized disjoint intervals (for comparison with the tree).
    pub fn normalized(&self) -> Vec<(u64, u64)> {
        let mut v = self.items.clone();
        v.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::new();
        for (lo, hi) in v {
            match out.last_mut() {
                Some((_, phi)) if lo <= *phi => *phi = (*phi).max(hi),
                _ => out.push((lo, hi)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_and_merge_adjacent() {
        let mut t = IntervalTree::new();
        t.insert(0, 8);
        t.insert(8, 16); // adjacent → merged
        assert_eq!(t.len(), 1);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(0, 16)]);
        t.insert(32, 40);
        assert_eq!(t.len(), 2);
        t.insert(10, 34); // bridges both
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(0, 40)]);
        assert_eq!(t.covered_bytes(), 40);
        assert_eq!(t.accesses(), 4);
    }

    #[test]
    fn contained_insert_is_absorbed() {
        let mut t = IntervalTree::new();
        t.insert(0, 100);
        t.insert(10, 20);
        assert_eq!(t.len(), 1);
        assert_eq!(t.iter().next(), Some((0, 100)));
    }

    #[test]
    fn empty_and_degenerate() {
        let mut t = IntervalTree::new();
        t.insert(5, 5);
        t.insert(7, 3);
        assert!(t.is_empty());
        assert!(!t.contains(5));
        assert!(!t.overlaps(0, 100));
        assert_eq!(t.intersect(&IntervalTree::new()), vec![]);
    }

    #[test]
    fn overlap_queries() {
        let mut t = IntervalTree::new();
        t.insert(10, 20);
        t.insert(30, 40);
        assert!(t.overlaps(15, 16));
        assert!(t.overlaps(19, 31));
        assert!(!t.overlaps(20, 30), "half-open: 20 and 30 not covered");
        assert!(t.contains(10));
        assert!(!t.contains(20));
        assert!(t.contains(39));
    }

    #[test]
    fn dense_array_sweep_stays_compact() {
        // a segment writing a[0..1000] as 8-byte elements
        let mut t = IntervalTree::new();
        for i in 0..1000u64 {
            t.insert(0x1000 + i * 8, 0x1000 + i * 8 + 8);
        }
        assert_eq!(t.len(), 1, "dense accesses accumulate into one interval");
        assert_eq!(t.covered_bytes(), 8000);
        assert_eq!(t.accesses(), 1000);
    }

    #[test]
    fn intersect_reports_overlap_ranges() {
        let mut a = IntervalTree::new();
        a.insert(0, 10);
        a.insert(20, 30);
        let mut b = IntervalTree::new();
        b.insert(5, 25);
        assert_eq!(a.intersect(&b), vec![(5, 10), (20, 25)]);
        assert_eq!(b.intersect(&a), vec![(5, 10), (20, 25)], "symmetric");
        assert!(a.intersects(&b));
        let mut c = IntervalTree::new();
        c.insert(10, 20);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersect(&c), vec![]);
    }

    #[test]
    fn union_covers_both() {
        let mut a = IntervalTree::new();
        a.insert(0, 4);
        let mut b = IntervalTree::new();
        b.insert(8, 12);
        let u = a.union(&b);
        assert!(u.contains(0) && u.contains(9) && !u.contains(5));
    }

    #[test]
    fn bulk_extend_matches_insert_loop() {
        let events = vec![(40u64, 48u64), (0, 8), (8, 16), (100, 108), (4, 20), (99, 100)];
        let mut bulk = IntervalTree::new();
        bulk.bulk_extend(events.clone(), events.len() as u64);
        let mut reference = IntervalTree::new();
        for &(lo, hi) in &events {
            reference.insert(lo, hi);
        }
        assert_eq!(bulk, reference);
        assert_eq!(bulk.accesses(), reference.accesses());
        // extending a non-empty tree goes through the merge path
        bulk.bulk_extend(vec![(16, 40), (200, 204)], 2);
        reference.insert(16, 40);
        reference.insert(200, 204);
        assert_eq!(bulk, reference);
    }

    #[test]
    fn bulk_extend_degenerate_and_empty() {
        let mut t = IntervalTree::new();
        t.bulk_extend(Vec::new(), 0);
        assert!(t.is_empty());
        t.bulk_extend(vec![(5, 5), (9, 3)], 0);
        assert!(t.is_empty());
    }

    /// The structural invariant every mutation must preserve: intervals
    /// non-degenerate, strictly ordered, disjoint and non-adjacent
    /// (adjacent ranges must have been coalesced).
    fn assert_invariants(t: &IntervalTree) {
        let v: Vec<_> = t.iter().collect();
        for &(lo, hi) in &v {
            assert!(lo < hi, "degenerate interval in {v:?}");
        }
        for w in v.windows(2) {
            assert!(w[0].1 < w[1].0, "overlapping or adjacent intervals survived: {v:?}");
        }
    }

    #[test]
    fn bulk_extend_empty_drain_is_noop() {
        // a segment that buffered nothing still drains at close
        let mut t = IntervalTree::new();
        t.insert(10, 20);
        let before: Vec<_> = t.iter().collect();
        t.bulk_extend(Vec::new(), 0);
        assert_eq!(t.iter().collect::<Vec<_>>(), before);
        assert_eq!(t.accesses(), 1);
        assert_invariants(&t);
    }

    #[test]
    fn bulk_extend_single_interval() {
        // both build paths: direct sorted build (empty tree) ...
        let mut t = IntervalTree::new();
        t.bulk_extend(vec![(64, 72)], 1);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(64, 72)]);
        assert_eq!(t.accesses(), 1);
        assert_invariants(&t);
        // ... and the merge path (non-empty tree), bridging the gap
        t.bulk_extend(vec![(72, 80)], 1);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(64, 80)]);
        assert_eq!(t.accesses(), 2);
        assert_invariants(&t);
    }

    #[test]
    fn bulk_extend_fully_overlapping_run_coalesces_to_one() {
        // every event covered by the first: one interval, all accesses
        // credited (the buffer's raw count outlives the coalesce)
        let events = vec![(0u64, 100u64), (10, 20), (20, 30), (0, 100), (99, 100)];
        let mut t = IntervalTree::new();
        t.bulk_extend(events, 5);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(0, 100)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.accesses(), 5);
        assert_invariants(&t);
    }

    #[test]
    fn bulk_extend_adjacent_touching_intervals_coalesce() {
        // touching but non-overlapping [0,8)[8,16)[16,24) — arrival order
        // scrambled; half-open semantics make them one interval
        let mut t = IntervalTree::new();
        t.bulk_extend(vec![(8, 16), (16, 24), (0, 8)], 3);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(0, 24)]);
        assert_eq!(t.covered_bytes(), 24);
        assert_invariants(&t);
        // a second adjacent batch extends the same interval via merge_in
        t.bulk_extend(vec![(24, 32)], 1);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(0, 32)]);
        assert_invariants(&t);
        // near-adjacent (one-byte gap) must NOT coalesce
        t.bulk_extend(vec![(34, 40)], 1);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(0, 32), (34, 40)]);
        assert_invariants(&t);
    }

    proptest! {
        #[test]
        fn bulk_extend_equals_incremental(
            batches in prop::collection::vec(
                prop::collection::vec((0u64..400, 1u64..48), 0..60), 1..4),
        ) {
            let mut bulk = IntervalTree::new();
            let mut reference = IntervalTree::new();
            for batch in batches {
                let events: Vec<(u64, u64)> =
                    batch.iter().map(|&(lo, len)| (lo, lo + len)).collect();
                for &(lo, hi) in &events {
                    reference.insert(lo, hi);
                }
                let n = events.len() as u64;
                bulk.bulk_extend(events, n);
            }
            prop_assert_eq!(&bulk, &reference);
            prop_assert_eq!(bulk.accesses(), reference.accesses());
        }

        #[test]
        fn tree_matches_naive_model(
            ops in prop::collection::vec((0u64..256, 1u64..32), 1..120),
            probes in prop::collection::vec((0u64..300, 1u64..16), 1..40),
        ) {
            let mut tree = IntervalTree::new();
            let mut naive = NaiveIntervalSet::default();
            for (lo, len) in ops {
                tree.insert(lo, lo + len);
                naive.insert(lo, lo + len);
            }
            prop_assert_eq!(tree.iter().collect::<Vec<_>>(), naive.normalized());
            for (lo, len) in probes {
                prop_assert_eq!(tree.overlaps(lo, lo + len), naive.overlaps(lo, lo + len));
                prop_assert_eq!(tree.contains(lo), naive.contains(lo));
            }
        }

        #[test]
        fn intersect_agrees_with_naive(
            a_ops in prop::collection::vec((0u64..200, 1u64..24), 0..60),
            b_ops in prop::collection::vec((0u64..200, 1u64..24), 0..60),
        ) {
            let mut ta = IntervalTree::new();
            let mut na = NaiveIntervalSet::default();
            for (lo, len) in a_ops { ta.insert(lo, lo + len); na.insert(lo, lo + len); }
            let mut tb = IntervalTree::new();
            let mut nb = NaiveIntervalSet::default();
            for (lo, len) in b_ops { tb.insert(lo, lo + len); nb.insert(lo, lo + len); }
            prop_assert_eq!(ta.intersects(&tb), na.intersects(&nb));
            // every byte reported by intersect() is in both trees, and
            // every commonly-covered byte is reported
            let ranges = ta.intersect(&tb);
            for &(lo, hi) in &ranges {
                for x in lo..hi {
                    prop_assert!(ta.contains(x) && tb.contains(x));
                }
            }
            for x in 0u64..232 {
                let both = ta.contains(x) && tb.contains(x);
                let reported = ranges.iter().any(|&(lo, hi)| x >= lo && x < hi);
                prop_assert_eq!(both, reported, "byte {}", x);
            }
        }

        #[test]
        fn invariants_hold(ops in prop::collection::vec((0u64..1000, 1u64..64), 0..200)) {
            let mut t = IntervalTree::new();
            for (lo, len) in ops { t.insert(lo, lo + len); }
            // disjoint and non-adjacent, strictly ordered
            let v: Vec<_> = t.iter().collect();
            for w in v.windows(2) {
                prop_assert!(w[0].1 < w[1].0, "disjoint+non-adjacent: {:?}", v);
            }
            for &(lo, hi) in &v {
                prop_assert!(lo < hi);
            }
        }
    }
}
