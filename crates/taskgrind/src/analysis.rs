//! The determinacy-race analysis pass (paper Algorithm 1) plus the
//! false-positive suppression layers of §IV.
//!
//! For every pair of segments with no happens-before path between them,
//! the pass intersects one segment's write intervals with the other's
//! read∪write intervals; non-empty intersections are possible
//! determinacy races. Candidates then run through the suppression
//! pipeline:
//!
//! * **critical sections** — both segments hold a common lock;
//! * **mutexinoutset** — both tasks hold a common mutex dependence
//!   object (ordered "by mutual exclusion", not by happens-before);
//! * **thread-local storage** (§IV-C) — the address lies in the TLS
//!   block of the one thread both segments ran on, with equal DTV
//!   generations;
//! * **segment-local stack** (§IV-D) — for both segments the address is
//!   below the stack frame registered at segment start, i.e. it belongs
//!   to frames created (and destroyed) within each segment. Conflicts in
//!   a *parent's* frame are deliberately not suppressed — the residual
//!   false positive the paper reports on TMB stack tests at 4 threads.
//!
//! The paper notes the pass is embarrassingly parallel but ran
//! sequentially inside Valgrind; [`run`] implements both (the
//! parallel variant is the paper's future-work item, used by bench E8).

use crate::graph::{SegId, SegmentGraph};
use crate::reach::Reachability;

/// Suppression toggles (all on by default, as in the paper's tool).
#[derive(Clone, Copy, Debug)]
pub struct SuppressOptions {
    pub tls: bool,
    pub stack: bool,
    pub locks: bool,
    pub mutexinoutset: bool,
}

impl Default for SuppressOptions {
    fn default() -> Self {
        SuppressOptions { tls: true, stack: true, locks: true, mutexinoutset: true }
    }
}

/// One surviving conflict byte-range between two unordered segments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    pub seg1: SegId,
    pub seg2: SegId,
    pub lo: u64,
    pub hi: u64,
}

/// Aggregate result of the analysis pass.
#[derive(Clone, Debug, Default)]
pub struct AnalysisOutput {
    pub candidates: Vec<Candidate>,
    pub pairs_checked: u64,
    pub unordered_pairs: u64,
    /// Ranges found before suppression (the "naive" §IV count).
    pub raw_ranges: u64,
    pub suppressed_locks: u64,
    pub suppressed_mutex: u64,
    pub suppressed_tls: u64,
    pub suppressed_stack: u64,
}

fn locks_intersect(a: &[u64], b: &[u64]) -> bool {
    a.iter().any(|l| b.contains(l))
}

/// Classify one conflicting range against the suppression layers.
/// Returns `None` if it survives, or the name of the suppressing layer.
fn suppress_range(
    g: &SegmentGraph,
    opts: &SuppressOptions,
    s1: SegId,
    s2: SegId,
    lo: u64,
    hi: u64,
) -> Option<&'static str> {
    let a = &g.segments[s1 as usize];
    let b = &g.segments[s2 as usize];
    if opts.mutexinoutset {
        if let (Some(t1), Some(t2)) = (a.task, b.task) {
            if t1 != t2
                && locks_intersect(
                    &g.tasks[t1 as usize].mutex_objs,
                    &g.tasks[t2 as usize].mutex_objs,
                )
            {
                return Some("mutexinoutset");
            }
        }
    }
    if opts.tls && a.thread == b.thread && a.tls_gen == b.tls_gen {
        let in_tls = |s: &crate::graph::Segment| {
            s.tls_size > 0 && lo >= s.tls_base && hi <= s.tls_base + s.tls_size
        };
        if in_tls(a) && in_tls(b) {
            return Some("tls");
        }
    }
    if opts.stack && a.thread == b.thread {
        // segment-local: both segments ran on the same thread and the
        // range lies below the stack frame registered at each segment's
        // start — frames created and destroyed within the segments
        let local_to =
            |s: &crate::graph::Segment| lo >= s.stack_low && hi <= s.stack_high && hi <= s.start_sp;
        if local_to(a) && local_to(b) {
            return Some("stack");
        }
    }
    None
}

/// Conflicting byte ranges between two segments:
/// `w1 ∩ (r2 ∪ w2)  ∪  w2 ∩ r1`.
fn conflicts(g: &SegmentGraph, s1: SegId, s2: SegId) -> Vec<(u64, u64)> {
    let a = &g.segments[s1 as usize];
    let b = &g.segments[s2 as usize];
    let mut out = a.writes.intersect(&b.writes);
    out.extend(a.writes.intersect(&b.reads));
    out.extend(b.writes.intersect(&a.reads));
    out.sort_unstable();
    out.dedup();
    out
}

fn analyze_pair(
    g: &SegmentGraph,
    opts: &SuppressOptions,
    s1: SegId,
    s2: SegId,
    out: &mut AnalysisOutput,
) {
    let a = &g.segments[s1 as usize];
    let b = &g.segments[s2 as usize];
    // Cheap rejection before building range lists.
    if a.writes.is_empty() && b.writes.is_empty() {
        return;
    }
    let ranges = conflicts(g, s1, s2);
    if ranges.is_empty() {
        return;
    }
    out.raw_ranges += ranges.len() as u64;
    if opts.locks && locks_intersect(&a.locks, &b.locks) {
        out.suppressed_locks += ranges.len() as u64;
        return;
    }
    for (lo, hi) in ranges {
        match suppress_range(g, opts, s1, s2, lo, hi) {
            None => out.candidates.push(Candidate { seg1: s1, seg2: s2, lo, hi }),
            Some("tls") => out.suppressed_tls += 1,
            Some("stack") => out.suppressed_stack += 1,
            Some("mutexinoutset") => out.suppressed_mutex += 1,
            Some(_) => {}
        }
    }
}

/// Run Algorithm 1 sequentially.
pub fn run(g: &SegmentGraph, reach: &Reachability, opts: &SuppressOptions) -> AnalysisOutput {
    let mut out = AnalysisOutput::default();
    let ids: Vec<SegId> = interesting_segments(g);
    for (i, &s1) in ids.iter().enumerate() {
        for &s2 in &ids[i + 1..] {
            out.pairs_checked += 1;
            if reach.ordered(s1, s2) {
                continue;
            }
            out.unordered_pairs += 1;
            analyze_pair(g, opts, s1, s2, &mut out);
        }
    }
    out.candidates.sort_unstable_by_key(|c| (c.seg1, c.seg2, c.lo));
    out
}

/// Run Algorithm 1 with the pair loop fanned out over `threads` host
/// threads (the paper's future-work parallelization).
pub fn run_parallel(
    g: &SegmentGraph,
    reach: &Reachability,
    opts: &SuppressOptions,
    threads: usize,
) -> AnalysisOutput {
    let threads = threads.max(1);
    let ids: Vec<SegId> = interesting_segments(g);
    let n = ids.len();
    let mut partials: Vec<AnalysisOutput> = Vec::new();
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let ids = &ids;
            let handle = scope.spawn(move |_| {
                let mut out = AnalysisOutput::default();
                // strided partition of the outer loop balances the
                // triangular iteration space
                let mut i = t;
                while i < n {
                    let s1 = ids[i];
                    for &s2 in &ids[i + 1..] {
                        out.pairs_checked += 1;
                        if reach.ordered(s1, s2) {
                            continue;
                        }
                        out.unordered_pairs += 1;
                        analyze_pair(g, opts, s1, s2, &mut out);
                    }
                    i += threads;
                }
                out
            });
            handles.push(handle);
        }
        for h in handles {
            partials.push(h.join().unwrap());
        }
    })
    .unwrap();
    let mut out = AnalysisOutput::default();
    for p in partials {
        out.candidates.extend(p.candidates);
        out.pairs_checked += p.pairs_checked;
        out.unordered_pairs += p.unordered_pairs;
        out.raw_ranges += p.raw_ranges;
        out.suppressed_locks += p.suppressed_locks;
        out.suppressed_mutex += p.suppressed_mutex;
        out.suppressed_tls += p.suppressed_tls;
        out.suppressed_stack += p.suppressed_stack;
    }
    out.candidates.sort_unstable_by_key(|c| (c.seg1, c.seg2, c.lo));
    out
}

/// Segments worth pairing: real (non-sync) segments with any recorded
/// access.
fn interesting_segments(g: &SegmentGraph) -> Vec<SegId> {
    g.segments
        .iter()
        .filter(|s| !s.sync && (!s.reads.is_empty() || !s.writes.is_empty()))
        .map(|s| s.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DepKind, GraphBuilder, ThreadMeta};

    fn meta(tid: usize) -> ThreadMeta {
        ThreadMeta {
            tid,
            sp: 0x7000,
            stack_low: 0x4000,
            stack_high: 0x8000,
            tls_base: 0x100,
            tls_size: 64,
            tls_gen: 0,
        }
    }

    fn analyze(b: GraphBuilder) -> AnalysisOutput {
        let g = b.finalize();
        let r = Reachability::compute(&g);
        run(&g, &r, &SuppressOptions::default())
    }

    #[test]
    fn detects_write_write_race_between_independent_tasks() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for fn_addr in [0x100u64, 0x200] {
            let t = b.task_create(&m, 0, fn_addr);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0xA000, 8, true);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert_eq!(out.candidates.len(), 1);
        assert_eq!(out.candidates[0].lo, 0xA000);
        assert_eq!(out.candidates[0].hi, 0xA008);
    }

    #[test]
    fn read_read_is_not_a_race() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for _ in 0..2 {
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0xA000, 8, false);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert!(out.candidates.is_empty());
        assert_eq!(out.raw_ranges, 0);
    }

    #[test]
    fn write_read_race_detected_both_directions() {
        for writer_first in [true, false] {
            let mut b = GraphBuilder::new();
            let m = meta(0);
            let t1 = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t1);
            b.task_begin(&m, t1);
            b.record_access(&m, 0xB000, 8, writer_first);
            b.task_end(&m, t1);
            let t2 = b.task_create(&m, 0, 0x2);
            b.task_spawn(&m, t2);
            b.task_begin(&m, t2);
            b.record_access(&m, 0xB000, 8, !writer_first);
            b.task_end(&m, t2);
            let out = analyze(b);
            assert_eq!(out.candidates.len(), 1, "writer_first={writer_first}");
        }
    }

    #[test]
    fn ordered_tasks_do_not_race() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        let t1 = b.task_create(&m, 0, 0x1);
        b.task_dep(t1, 0xDEAD, 8, DepKind::Out);
        b.task_spawn(&m, t1);
        let t2 = b.task_create(&m, 0, 0x2);
        b.task_dep(t2, 0xDEAD, 8, DepKind::Inout);
        b.task_spawn(&m, t2);
        for t in [t1, t2] {
            b.task_begin(&m, t);
            b.record_access(&m, 0xDEAD, 8, true);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert!(out.candidates.is_empty(), "{:?}", out.candidates);
    }

    #[test]
    fn taskwait_removes_race_with_continuation() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        let t = b.task_create(&m, 0, 0x1);
        b.task_spawn(&m, t);
        b.task_begin(&m, t);
        b.record_access(&m, 0xC000, 8, true);
        b.task_end(&m, t);
        b.taskwait(&m);
        b.record_access(&m, 0xC000, 8, true);
        let out = analyze(b);
        assert!(out.candidates.is_empty());
    }

    #[test]
    fn critical_sections_suppress() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for _ in 0..2 {
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.critical_enter(&m, 9);
            b.record_access(&m, 0xE000, 8, true);
            b.critical_exit(&m, 9);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert!(out.candidates.is_empty());
        assert!(out.suppressed_locks > 0);
        // different locks do NOT suppress
        let mut b = GraphBuilder::new();
        for lock in [1u64, 2] {
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.critical_enter(&m, lock);
            b.record_access(&m, 0xE000, 8, true);
            b.critical_exit(&m, lock);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert_eq!(out.candidates.len(), 1);
    }

    #[test]
    fn mutexinoutset_suppresses_between_members() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for fnaddr in [0x1u64, 0x2] {
            let t = b.task_create(&m, 0, fnaddr);
            b.task_dep(t, 0xF000, 8, DepKind::Mutexinoutset);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0xF000, 8, true);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert!(out.candidates.is_empty(), "{:?}", out.candidates);
        assert!(out.suppressed_mutex > 0);
    }

    #[test]
    fn inoutset_members_do_race() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for fnaddr in [0x1u64, 0x2] {
            let t = b.task_create(&m, 0, fnaddr);
            b.task_dep(t, 0xF000, 8, DepKind::Inoutset);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0xF000, 8, true);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert_eq!(out.candidates.len(), 1, "inoutset members are unordered");
    }

    #[test]
    fn tls_suppression_same_thread_same_gen() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for _ in 0..2 {
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0x110, 8, true); // inside TLS [0x100,0x140)
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert!(out.candidates.is_empty());
        assert!(out.suppressed_tls > 0);
    }

    #[test]
    fn tls_conflict_on_different_threads_not_suppressed() {
        // same *address* in TLS ranges of two different threads can only
        // happen with distinct blocks; model it with distinct tls_base so
        // the conflict address is outside at least one block
        let mut b = GraphBuilder::new();
        let m0 = meta(0);
        let mut m1 = meta(1);
        m1.tls_base = 0x900;
        let t1 = b.task_create(&m0, 0, 0x1);
        b.task_begin(&m0, t1);
        b.record_access(&m0, 0x5000, 8, true);
        b.task_end(&m0, t1);
        let t2 = b.task_create(&m0, 0, 0x2);
        b.task_begin(&m1, t2);
        b.record_access(&m1, 0x5000, 8, true);
        b.task_end(&m1, t2);
        let out = analyze(b);
        assert_eq!(out.candidates.len(), 1);
    }

    #[test]
    fn segment_local_stack_reuse_suppressed() {
        // two tasks on the same thread each use a "local" at the same
        // stack slot below their starting sp (§IV-D, TMB stack.2)
        let mut b = GraphBuilder::new();
        let m = meta(0); // sp = 0x7000
        for _ in 0..2 {
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0x6F00, 8, true); // below sp: task-local slot
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert!(out.candidates.is_empty());
        assert!(out.suppressed_stack > 0);
    }

    #[test]
    fn parent_frame_conflict_not_suppressed() {
        // siblings writing a location in the parent's frame (above their
        // start sp) — the paper's remaining FP, and a real hazard
        let mut b = GraphBuilder::new();
        let mut m = meta(0);
        m.sp = 0x7000;
        let parent_var = 0x7100; // above the tasks' start sp
        for _ in 0..2 {
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, parent_var, 8, true);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert_eq!(out.candidates.len(), 1);
    }

    #[test]
    fn parallel_analysis_matches_sequential() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for i in 0..12u64 {
            let t = b.task_create(&m, 0, 0x100 + i);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0xA000 + (i % 3) * 8, 8, true);
            b.record_access(&m, 0x9000, 8, false);
            b.task_end(&m, t);
        }
        let g = b.finalize();
        let r = Reachability::compute(&g);
        let seq = run(&g, &r, &SuppressOptions::default());
        for threads in [1, 2, 4] {
            let par = run_parallel(&g, &r, &SuppressOptions::default(), threads);
            assert_eq!(seq.candidates, par.candidates, "threads={threads}");
            assert_eq!(seq.raw_ranges, par.raw_ranges);
            assert_eq!(seq.unordered_pairs, par.unordered_pairs);
        }
    }

    #[test]
    fn suppression_toggles_expose_raw_counts() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for _ in 0..2 {
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0x110, 8, true); // TLS conflict
            b.task_end(&m, t);
        }
        let g = b.finalize();
        let r = Reachability::compute(&g);
        let off = SuppressOptions { tls: false, stack: false, locks: false, mutexinoutset: false };
        let out = run(&g, &r, &off);
        assert_eq!(out.candidates.len(), 1, "naive mode reports the FP");
    }
}
