//! The determinacy-race analysis pass (paper Algorithm 1) plus the
//! false-positive suppression layers of §IV.
//!
//! For every pair of segments with no happens-before path between them,
//! the pass intersects one segment's write intervals with the other's
//! read∪write intervals; non-empty intersections are possible
//! determinacy races. Candidates then run through the suppression
//! pipeline:
//!
//! * **critical sections** — both segments hold a common lock;
//! * **mutexinoutset** — both tasks hold a common mutex dependence
//!   object (ordered "by mutual exclusion", not by happens-before);
//! * **thread-local storage** (§IV-C) — the address lies in the TLS
//!   block of the one thread both segments ran on, with equal DTV
//!   generations;
//! * **segment-local stack** (§IV-D) — for both segments the address is
//!   below the stack frame registered at segment start, i.e. it belongs
//!   to frames created (and destroyed) within each segment. Conflicts in
//!   a *parent's* frame are deliberately not suppressed — the residual
//!   false positive the paper reports on TMB stack tests at 4 threads.
//!
//! The paper notes the pass is embarrassingly parallel but ran
//! sequentially inside Valgrind; [`run`] implements both (the
//! parallel variant is the paper's future-work item, used by bench E8).
//!
//! Pair generation comes in two shapes. The reference engines ([`run`],
//! [`run_parallel`]) iterate all O(S²) segment pairs — faithful to
//! Algorithm 1 but quadratic even when footprints are disjoint. The
//! default engine ([`run_sweep`]) is address-indexed: a global endpoint
//! sweep over every interesting segment's intervals emits exactly the
//! pairs whose memory footprints overlap with at least one write
//! involved — the pairs for which `conflicts` is non-empty — then the
//! existing reachability + suppression pipeline runs on those. The
//! sweep parallelizes by address shard; duplicate pairs from intervals
//! spanning shard boundaries are deduplicated *before* analysis so
//! suppression counters are never double-counted.

use crate::graph::{SegId, SegmentGraph, TaskId};
use crate::itree::IntervalTree;
use crate::reach::Reachability;
use grindcore::Tid;
use std::collections::HashSet;

/// Suppression toggles (all on by default, as in the paper's tool).
#[derive(Clone, Copy, Debug)]
pub struct SuppressOptions {
    pub tls: bool,
    pub stack: bool,
    pub locks: bool,
    pub mutexinoutset: bool,
    /// Honor static guard proofs carried on segments
    /// ([`SegView::guard_mask`]). Sound static proofs are a strict
    /// subset of what dynamic lock tracking already suppresses, so the
    /// layer only fires when `locks` is off or dynamic tracking missed
    /// a critical section.
    pub static_proof: bool,
}

impl Default for SuppressOptions {
    fn default() -> Self {
        SuppressOptions {
            tls: true,
            stack: true,
            locks: true,
            mutexinoutset: true,
            static_proof: true,
        }
    }
}

/// One surviving conflict byte-range between two unordered segments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    pub seg1: SegId,
    pub seg2: SegId,
    pub lo: u64,
    pub hi: u64,
}

/// Aggregate result of the analysis pass.
#[derive(Clone, Debug, Default)]
pub struct AnalysisOutput {
    pub candidates: Vec<Candidate>,
    pub pairs_checked: u64,
    pub unordered_pairs: u64,
    /// Ranges found before suppression (the "naive" §IV count).
    pub raw_ranges: u64,
    pub suppressed_locks: u64,
    pub suppressed_mutex: u64,
    pub suppressed_tls: u64,
    pub suppressed_stack: u64,
    /// Ranges killed by a static guard proof
    /// ([`Suppression::StaticProof`]).
    pub suppressed_static: u64,
}

/// Both inputs are kept sorted at build time (`graph.rs` inserts locks
/// and mutex objects in order), so a linear merge replaces the old
/// O(n·m) `Vec::contains` scan.
fn locks_intersect(a: &[u64], b: &[u64]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// The suppression layer that killed a conflicting range. An enum (not
/// a string) so `analyze_pair_views`'s match is exhaustive: adding a
/// layer without counting it is a compile error, not a silently dropped
/// statistic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suppression {
    Mutexinoutset,
    Tls,
    Stack,
    /// Every access in both segments was statically proven to execute
    /// under at least one common lock (the segments' guard masks
    /// intersect). Checked last, after every dynamic layer, so enabling
    /// it cannot reshuffle the dynamic suppression counters.
    StaticProof,
}

/// A borrowed view of everything pair analysis needs from one segment.
///
/// Both engines construct these — the batch engines straight from
/// [`SegmentGraph`] storage ([`SegView::of`]), the streaming engine
/// from retired-epoch snapshots whose interval trees have already been
/// detached from the graph — so the conflict-intersection and
/// suppression pipeline is a single code path and its verdicts cannot
/// drift between engines.
#[derive(Clone, Copy)]
pub struct SegView<'a> {
    pub id: SegId,
    pub reads: &'a IntervalTree,
    pub writes: &'a IntervalTree,
    /// Critical-section locks held throughout the segment (sorted).
    pub locks: &'a [u64],
    pub thread: Tid,
    pub start_sp: u64,
    pub stack_low: u64,
    pub stack_high: u64,
    pub tls_base: u64,
    pub tls_size: u64,
    pub tls_gen: u64,
    pub task: Option<TaskId>,
    /// `mutex_objs` of the owning task (sorted; empty when `task` is
    /// `None`).
    pub mutex_objs: &'a [u64],
    /// AND-fold of the static guard masks of every access recorded into
    /// this segment (bit *i* set ⇔ every access was statically proven
    /// to hold lock *i* of the analysis' lock universe). `!0` while the
    /// segment is empty; an access with no proof zeroes it.
    pub guard_mask: u64,
}

impl<'a> SegView<'a> {
    /// View of segment `id` inside a finalized graph.
    pub fn of(g: &'a SegmentGraph, id: SegId) -> SegView<'a> {
        let s = &g.segments[id as usize];
        SegView {
            id,
            reads: &s.reads,
            writes: &s.writes,
            locks: &s.locks,
            thread: s.thread,
            start_sp: s.start_sp,
            stack_low: s.stack_low,
            stack_high: s.stack_high,
            tls_base: s.tls_base,
            tls_size: s.tls_size,
            tls_gen: s.tls_gen,
            task: s.task,
            mutex_objs: s.task.map(|t| &g.tasks[t as usize].mutex_objs[..]).unwrap_or(&[]),
            guard_mask: s.guard_mask,
        }
    }
}

/// Classify one conflicting range against the suppression layers.
/// Returns `None` if it survives, or the suppressing layer.
fn suppress_range(
    opts: &SuppressOptions,
    a: &SegView,
    b: &SegView,
    lo: u64,
    hi: u64,
) -> Option<Suppression> {
    if opts.mutexinoutset {
        if let (Some(t1), Some(t2)) = (a.task, b.task) {
            if t1 != t2 && locks_intersect(a.mutex_objs, b.mutex_objs) {
                return Some(Suppression::Mutexinoutset);
            }
        }
    }
    if opts.tls && a.thread == b.thread && a.tls_gen == b.tls_gen {
        let in_tls =
            |s: &SegView| s.tls_size > 0 && lo >= s.tls_base && hi <= s.tls_base + s.tls_size;
        if in_tls(a) && in_tls(b) {
            return Some(Suppression::Tls);
        }
    }
    if opts.stack && a.thread == b.thread {
        // segment-local: both segments ran on the same thread and the
        // range lies below the stack frame registered at each segment's
        // start — frames created and destroyed within the segments
        let local_to = |s: &SegView| lo >= s.stack_low && hi <= s.stack_high && hi <= s.start_sp;
        if local_to(a) && local_to(b) {
            return Some(Suppression::Stack);
        }
    }
    // Last on purpose: a sound static proof implies the dynamic lock
    // layer already caught the pair, so checking after every dynamic
    // layer keeps their counters byte-identical whether this toggle is
    // on or off.
    if opts.static_proof && a.guard_mask & b.guard_mask != 0 {
        return Some(Suppression::StaticProof);
    }
    None
}

/// Conflicting byte ranges between two segments:
/// `w1 ∩ (r2 ∪ w2)  ∪  w2 ∩ r1`.
fn conflicts(a: &SegView, b: &SegView) -> Vec<(u64, u64)> {
    let mut out = a.writes.intersect(b.writes);
    out.extend(a.writes.intersect(b.reads));
    out.extend(b.writes.intersect(a.reads));
    out.sort_unstable();
    out.dedup();
    out
}

/// Analyze one unordered pair through conflict intersection and the
/// suppression layers, accumulating into `out`. The shared engine core:
/// batch and streaming both land here.
pub(crate) fn analyze_pair_views(
    opts: &SuppressOptions,
    a: &SegView,
    b: &SegView,
    out: &mut AnalysisOutput,
) {
    // Cheap rejection before building range lists.
    if a.writes.is_empty() && b.writes.is_empty() {
        return;
    }
    let ranges = conflicts(a, b);
    if ranges.is_empty() {
        return;
    }
    out.raw_ranges += ranges.len() as u64;
    if opts.locks && locks_intersect(a.locks, b.locks) {
        out.suppressed_locks += ranges.len() as u64;
        return;
    }
    for (lo, hi) in ranges {
        match suppress_range(opts, a, b, lo, hi) {
            None => out.candidates.push(Candidate { seg1: a.id, seg2: b.id, lo, hi }),
            Some(Suppression::Tls) => out.suppressed_tls += 1,
            Some(Suppression::Stack) => out.suppressed_stack += 1,
            Some(Suppression::Mutexinoutset) => out.suppressed_mutex += 1,
            Some(Suppression::StaticProof) => out.suppressed_static += 1,
        }
    }
}

fn analyze_pair(
    g: &SegmentGraph,
    opts: &SuppressOptions,
    s1: SegId,
    s2: SegId,
    out: &mut AnalysisOutput,
) {
    analyze_pair_views(opts, &SegView::of(g, s1), &SegView::of(g, s2), out);
}

impl AnalysisOutput {
    /// Fold a per-thread / per-shard / per-epoch partial into `self`.
    pub fn absorb(&mut self, p: AnalysisOutput) {
        self.candidates.extend(p.candidates);
        self.pairs_checked += p.pairs_checked;
        self.unordered_pairs += p.unordered_pairs;
        self.raw_ranges += p.raw_ranges;
        self.suppressed_locks += p.suppressed_locks;
        self.suppressed_mutex += p.suppressed_mutex;
        self.suppressed_tls += p.suppressed_tls;
        self.suppressed_stack += p.suppressed_stack;
        self.suppressed_static += p.suppressed_static;
    }
}

/// Fold a per-thread / per-shard partial into the aggregate output.
fn merge_partial(out: &mut AnalysisOutput, p: AnalysisOutput) {
    out.absorb(p);
}

/// Run Algorithm 1 sequentially.
pub fn run(g: &SegmentGraph, reach: &Reachability, opts: &SuppressOptions) -> AnalysisOutput {
    let mut out = AnalysisOutput::default();
    let ids: Vec<SegId> = interesting_segments(g);
    for (i, &s1) in ids.iter().enumerate() {
        for &s2 in &ids[i + 1..] {
            out.pairs_checked += 1;
            if reach.ordered(s1, s2) {
                continue;
            }
            out.unordered_pairs += 1;
            analyze_pair(g, opts, s1, s2, &mut out);
        }
    }
    sort_candidates(&mut out.candidates);
    out
}

/// Run Algorithm 1 with the all-pairs loop fanned out over `threads`
/// host threads in a strided partition (the reference parallelization;
/// [`run_sweep`] is the address-indexed default).
pub fn run_parallel(
    g: &SegmentGraph,
    reach: &Reachability,
    opts: &SuppressOptions,
    threads: usize,
) -> AnalysisOutput {
    let threads = threads.max(1);
    let ids: Vec<SegId> = interesting_segments(g);
    let n = ids.len();
    let mut partials: Vec<AnalysisOutput> = Vec::new();
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let ids = &ids;
            let handle = scope.spawn(move |_| {
                let mut out = AnalysisOutput::default();
                // strided partition of the outer loop balances the
                // triangular iteration space
                let mut i = t;
                while i < n {
                    let s1 = ids[i];
                    for &s2 in &ids[i + 1..] {
                        out.pairs_checked += 1;
                        if reach.ordered(s1, s2) {
                            continue;
                        }
                        out.unordered_pairs += 1;
                        analyze_pair(g, opts, s1, s2, &mut out);
                    }
                    i += threads;
                }
                out
            });
            handles.push(handle);
        }
        for h in handles {
            partials.push(h.join().unwrap());
        }
    })
    .unwrap();
    let mut out = AnalysisOutput::default();
    for p in partials {
        merge_partial(&mut out, p);
    }
    sort_candidates(&mut out.candidates);
    out
}

/// Resolve a requested analysis thread count: 0 means "auto", i.e.
/// `std::thread::available_parallelism()`.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// One interval of an interesting segment, flattened for the sweep.
#[derive(Clone, Copy)]
pub(crate) struct SweepIv {
    pub(crate) lo: u64,
    pub(crate) hi: u64,
    pub(crate) seg: SegId,
    pub(crate) write: bool,
}

/// Flatten one segment's interval trees into `ivs` for the sweep.
pub(crate) fn flatten_intervals(
    ivs: &mut Vec<SweepIv>,
    id: SegId,
    reads: &IntervalTree,
    writes: &IntervalTree,
) {
    for (lo, hi) in writes.iter() {
        ivs.push(SweepIv { lo, hi, seg: id, write: true });
    }
    for (lo, hi) in reads.iter() {
        ivs.push(SweepIv { lo, hi, seg: id, write: false });
    }
}

/// Canonical order for the merged candidate list. Every engine sorts
/// with this key before the list reaches report generation, so batch,
/// parallel, sweep and per-epoch streaming merges all render
/// bit-identically.
pub(crate) fn sort_candidates(v: &mut [Candidate]) {
    v.sort_unstable_by_key(|c| (c.seg1, c.seg2, c.lo, c.hi));
}

/// Sweep a lo-sorted interval list, emitting the segment pairs whose
/// footprints overlap with at least one write involved — exactly the
/// pairs for which `conflicts` returns a non-empty range list.
/// Half-open semantics: intervals touching only at an endpoint do not
/// pair (`a.hi > iv.lo` is strict), matching `IntervalTree::intersect`.
pub(crate) fn sweep_pairs(ivs: &[SweepIv], out: &mut HashSet<(SegId, SegId)>) {
    let mut active: Vec<SweepIv> = Vec::new();
    for iv in ivs {
        active.retain(|a| a.hi > iv.lo);
        for a in &active {
            if a.seg != iv.seg && (a.write || iv.write) {
                let p = if a.seg < iv.seg { (a.seg, iv.seg) } else { (iv.seg, a.seg) };
                out.insert(p);
            }
        }
        active.push(*iv);
    }
}

/// Below this many flattened intervals the sharding set-up costs more
/// than the sweep itself; run one shard inline.
const SHARD_THRESHOLD: usize = 512;

/// Address-indexed candidate generation for every interesting segment's
/// intervals: a global endpoint sweep emits only segment pairs whose
/// footprints actually overlap (see `sweep_pairs`). Parallelized by
/// address shard — shard boundaries are quantiles of the sorted interval
/// starts, an interval lands in every shard its footprint overlaps
/// (clipped to the shard's coordinate range), and cross-shard duplicate
/// pairs are removed *before* the suppression pipeline runs so no
/// counter is double-counted. The surviving pair list is then split
/// across the same threads for `analyze_pair`.
///
/// `pairs_checked` / `unordered_pairs` are work metrics of *this*
/// engine (pairs the sweep emitted), not the all-pairs totals; the
/// verdict-bearing fields — candidates, `raw_ranges`, every
/// `suppressed_*` counter — are bit-identical to [`run`]'s.
pub fn run_sweep(
    g: &SegmentGraph,
    reach: &Reachability,
    opts: &SuppressOptions,
    threads: usize,
) -> AnalysisOutput {
    let threads = resolve_threads(threads);
    let ids: Vec<SegId> = interesting_segments(g);
    let mut ivs: Vec<SweepIv> = Vec::new();
    for &id in &ids {
        let s = &g.segments[id as usize];
        flatten_intervals(&mut ivs, id, &s.reads, &s.writes);
    }
    ivs.sort_unstable_by_key(|iv| (iv.lo, iv.hi, iv.seg, iv.write));

    let mut set: HashSet<(SegId, SegId)> = HashSet::new();
    if threads <= 1 || ivs.len() < SHARD_THRESHOLD {
        sweep_pairs(&ivs, &mut set);
    } else {
        // shard boundaries at quantiles of the sorted interval starts
        let mut bounds: Vec<u64> = vec![0];
        for k in 1..threads {
            bounds.push(ivs[k * ivs.len() / threads].lo);
        }
        bounds.push(u64::MAX);
        bounds.dedup();
        let nsh = bounds.len() - 1;
        // route each interval to every shard its footprint overlaps,
        // clipped to the shard's range; `ivs` is lo-sorted and clipping
        // takes max(lo, shard_lo), so each shard list stays lo-sorted
        let mut shards: Vec<Vec<SweepIv>> = vec![Vec::new(); nsh];
        for iv in &ivs {
            let first = bounds.partition_point(|&b| b <= iv.lo).saturating_sub(1);
            for sh in first..nsh {
                let (slo, shi) = (bounds[sh], bounds[sh + 1]);
                if iv.lo >= shi {
                    continue;
                }
                if iv.hi <= slo {
                    break;
                }
                shards[sh].push(SweepIv { lo: iv.lo.max(slo), hi: iv.hi.min(shi), ..*iv });
            }
        }
        let mut sets: Vec<HashSet<(SegId, SegId)>> = Vec::new();
        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for sh in &shards {
                handles.push(scope.spawn(move |_| {
                    let mut s = HashSet::new();
                    sweep_pairs(sh, &mut s);
                    s
                }));
            }
            for h in handles {
                sets.push(h.join().unwrap());
            }
        })
        .unwrap();
        for s in sets {
            set.extend(s);
        }
    }
    let mut pairs: Vec<(SegId, SegId)> = set.into_iter().collect();
    pairs.sort_unstable();

    let mut out = AnalysisOutput { pairs_checked: pairs.len() as u64, ..Default::default() };
    let unordered: Vec<(SegId, SegId)> =
        pairs.into_iter().filter(|&(s1, s2)| !reach.ordered(s1, s2)).collect();
    out.unordered_pairs = unordered.len() as u64;
    if threads <= 1 || unordered.len() < 2 * threads {
        for &(s1, s2) in &unordered {
            analyze_pair(g, opts, s1, s2, &mut out);
        }
    } else {
        let chunk = unordered.len().div_ceil(threads);
        let mut partials: Vec<AnalysisOutput> = Vec::new();
        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for ch in unordered.chunks(chunk) {
                handles.push(scope.spawn(move |_| {
                    let mut p = AnalysisOutput::default();
                    for &(s1, s2) in ch {
                        analyze_pair(g, opts, s1, s2, &mut p);
                    }
                    p
                }));
            }
            for h in handles {
                partials.push(h.join().unwrap());
            }
        })
        .unwrap();
        for p in partials {
            merge_partial(&mut out, p);
        }
    }
    sort_candidates(&mut out.candidates);
    out
}

/// Segments worth pairing: real (non-sync) segments with any recorded
/// access.
fn interesting_segments(g: &SegmentGraph) -> Vec<SegId> {
    g.segments
        .iter()
        .filter(|s| !s.sync && (!s.reads.is_empty() || !s.writes.is_empty()))
        .map(|s| s.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DepKind, GraphBuilder, ThreadMeta};

    fn meta(tid: usize) -> ThreadMeta {
        ThreadMeta {
            tid,
            sp: 0x7000,
            stack_low: 0x4000,
            stack_high: 0x8000,
            tls_base: 0x100,
            tls_size: 64,
            tls_gen: 0,
        }
    }

    fn analyze(b: GraphBuilder) -> AnalysisOutput {
        let g = b.finalize();
        let r = Reachability::compute(&g);
        run(&g, &r, &SuppressOptions::default())
    }

    #[test]
    fn detects_write_write_race_between_independent_tasks() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for fn_addr in [0x100u64, 0x200] {
            let t = b.task_create(&m, 0, fn_addr);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0xA000, 8, true);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert_eq!(out.candidates.len(), 1);
        assert_eq!(out.candidates[0].lo, 0xA000);
        assert_eq!(out.candidates[0].hi, 0xA008);
    }

    #[test]
    fn read_read_is_not_a_race() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for _ in 0..2 {
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0xA000, 8, false);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert!(out.candidates.is_empty());
        assert_eq!(out.raw_ranges, 0);
    }

    #[test]
    fn write_read_race_detected_both_directions() {
        for writer_first in [true, false] {
            let mut b = GraphBuilder::new();
            let m = meta(0);
            let t1 = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t1);
            b.task_begin(&m, t1);
            b.record_access(&m, 0xB000, 8, writer_first);
            b.task_end(&m, t1);
            let t2 = b.task_create(&m, 0, 0x2);
            b.task_spawn(&m, t2);
            b.task_begin(&m, t2);
            b.record_access(&m, 0xB000, 8, !writer_first);
            b.task_end(&m, t2);
            let out = analyze(b);
            assert_eq!(out.candidates.len(), 1, "writer_first={writer_first}");
        }
    }

    #[test]
    fn ordered_tasks_do_not_race() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        let t1 = b.task_create(&m, 0, 0x1);
        b.task_dep(t1, 0xDEAD, 8, DepKind::Out);
        b.task_spawn(&m, t1);
        let t2 = b.task_create(&m, 0, 0x2);
        b.task_dep(t2, 0xDEAD, 8, DepKind::Inout);
        b.task_spawn(&m, t2);
        for t in [t1, t2] {
            b.task_begin(&m, t);
            b.record_access(&m, 0xDEAD, 8, true);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert!(out.candidates.is_empty(), "{:?}", out.candidates);
    }

    #[test]
    fn taskwait_removes_race_with_continuation() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        let t = b.task_create(&m, 0, 0x1);
        b.task_spawn(&m, t);
        b.task_begin(&m, t);
        b.record_access(&m, 0xC000, 8, true);
        b.task_end(&m, t);
        b.taskwait(&m);
        b.record_access(&m, 0xC000, 8, true);
        let out = analyze(b);
        assert!(out.candidates.is_empty());
    }

    #[test]
    fn critical_sections_suppress() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for _ in 0..2 {
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.critical_enter(&m, 9);
            b.record_access(&m, 0xE000, 8, true);
            b.critical_exit(&m, 9);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert!(out.candidates.is_empty());
        assert!(out.suppressed_locks > 0);
        // different locks do NOT suppress
        let mut b = GraphBuilder::new();
        for lock in [1u64, 2] {
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.critical_enter(&m, lock);
            b.record_access(&m, 0xE000, 8, true);
            b.critical_exit(&m, lock);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert_eq!(out.candidates.len(), 1);
    }

    #[test]
    fn mutexinoutset_suppresses_between_members() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for fnaddr in [0x1u64, 0x2] {
            let t = b.task_create(&m, 0, fnaddr);
            b.task_dep(t, 0xF000, 8, DepKind::Mutexinoutset);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0xF000, 8, true);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert!(out.candidates.is_empty(), "{:?}", out.candidates);
        assert!(out.suppressed_mutex > 0);
    }

    /// Two tasks racing on one address, every access tagged with a
    /// common statically-proven guard bit, dynamic lock tracking OFF:
    /// only the StaticProof layer can (and does) kill the pair.
    fn static_guarded_pair(mask1: u64, mask2: u64) -> GraphBuilder {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for mask in [mask1, mask2] {
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access_masked(&m, 0xE000, 8, true, mask);
            b.task_end(&m, t);
        }
        b
    }

    #[test]
    fn static_proof_suppresses_when_masks_intersect() {
        let opts = SuppressOptions { locks: false, ..Default::default() };
        let g = static_guarded_pair(0b01, 0b11).finalize();
        let r = Reachability::compute(&g);
        let out = run(&g, &r, &opts);
        assert!(out.candidates.is_empty(), "{:?}", out.candidates);
        assert!(out.suppressed_static > 0);
        // disjoint masks (different proven locks) do NOT suppress
        let g = static_guarded_pair(0b01, 0b10).finalize();
        let r = Reachability::compute(&g);
        let out = run(&g, &r, &opts);
        assert_eq!(out.candidates.len(), 1);
        assert_eq!(out.suppressed_static, 0);
        // one unproven access in a segment zeroes its fold
        let g = {
            let mut b = static_guarded_pair(0b01, 0b01);
            let m = meta(0);
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access_masked(&m, 0xE000, 8, true, 0b01);
            b.record_access(&m, 0xE008, 8, false); // no proof → mask 0
            b.task_end(&m, t);
            b.finalize()
        };
        let r = Reachability::compute(&g);
        let out = run(&g, &r, &opts);
        assert!(
            out.candidates.iter().any(|c| c.lo == 0xE000),
            "mixed segment must not be proof-suppressed: {:?}",
            out.candidates
        );
    }

    #[test]
    fn static_proof_toggle_exposes_the_pair() {
        let opts = SuppressOptions { locks: false, static_proof: false, ..Default::default() };
        let g = static_guarded_pair(0b01, 0b01).finalize();
        let r = Reachability::compute(&g);
        let out = run(&g, &r, &opts);
        assert_eq!(out.candidates.len(), 1);
        assert_eq!(out.suppressed_static, 0);
    }

    #[test]
    fn static_proof_checked_after_dynamic_layers() {
        // the same pair under a *dynamic* critical section AND a static
        // proof: the locks layer must claim it, leaving the static
        // counter at zero — this is what keeps verdicts and counters
        // bit-identical when the concurrency pass is toggled
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for _ in 0..2 {
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.critical_enter(&m, 9);
            b.record_access_masked(&m, 0xE000, 8, true, 0b1);
            b.critical_exit(&m, 9);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert!(out.candidates.is_empty());
        assert!(out.suppressed_locks > 0);
        assert_eq!(out.suppressed_static, 0);
    }

    #[test]
    fn inoutset_members_do_race() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for fnaddr in [0x1u64, 0x2] {
            let t = b.task_create(&m, 0, fnaddr);
            b.task_dep(t, 0xF000, 8, DepKind::Inoutset);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0xF000, 8, true);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert_eq!(out.candidates.len(), 1, "inoutset members are unordered");
    }

    #[test]
    fn tls_suppression_same_thread_same_gen() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for _ in 0..2 {
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0x110, 8, true); // inside TLS [0x100,0x140)
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert!(out.candidates.is_empty());
        assert!(out.suppressed_tls > 0);
    }

    #[test]
    fn tls_conflict_on_different_threads_not_suppressed() {
        // same *address* in TLS ranges of two different threads can only
        // happen with distinct blocks; model it with distinct tls_base so
        // the conflict address is outside at least one block
        let mut b = GraphBuilder::new();
        let m0 = meta(0);
        let mut m1 = meta(1);
        m1.tls_base = 0x900;
        let t1 = b.task_create(&m0, 0, 0x1);
        b.task_begin(&m0, t1);
        b.record_access(&m0, 0x5000, 8, true);
        b.task_end(&m0, t1);
        let t2 = b.task_create(&m0, 0, 0x2);
        b.task_begin(&m1, t2);
        b.record_access(&m1, 0x5000, 8, true);
        b.task_end(&m1, t2);
        let out = analyze(b);
        assert_eq!(out.candidates.len(), 1);
    }

    #[test]
    fn segment_local_stack_reuse_suppressed() {
        // two tasks on the same thread each use a "local" at the same
        // stack slot below their starting sp (§IV-D, TMB stack.2)
        let mut b = GraphBuilder::new();
        let m = meta(0); // sp = 0x7000
        for _ in 0..2 {
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0x6F00, 8, true); // below sp: task-local slot
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert!(out.candidates.is_empty());
        assert!(out.suppressed_stack > 0);
    }

    #[test]
    fn parent_frame_conflict_not_suppressed() {
        // siblings writing a location in the parent's frame (above their
        // start sp) — the paper's remaining FP, and a real hazard
        let mut b = GraphBuilder::new();
        let mut m = meta(0);
        m.sp = 0x7000;
        let parent_var = 0x7100; // above the tasks' start sp
        for _ in 0..2 {
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, parent_var, 8, true);
            b.task_end(&m, t);
        }
        let out = analyze(b);
        assert_eq!(out.candidates.len(), 1);
    }

    #[test]
    fn parallel_analysis_matches_sequential() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for i in 0..12u64 {
            let t = b.task_create(&m, 0, 0x100 + i);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0xA000 + (i % 3) * 8, 8, true);
            b.record_access(&m, 0x9000, 8, false);
            b.task_end(&m, t);
        }
        let g = b.finalize();
        let r = Reachability::compute(&g);
        let seq = run(&g, &r, &SuppressOptions::default());
        for threads in [1, 2, 4] {
            let par = run_parallel(&g, &r, &SuppressOptions::default(), threads);
            assert_eq!(seq.candidates, par.candidates, "threads={threads}");
            assert_eq!(seq.raw_ranges, par.raw_ranges);
            assert_eq!(seq.unordered_pairs, par.unordered_pairs);
        }
    }

    /// Verdict-bearing fields must be bit-identical across engines;
    /// pairs_checked/unordered_pairs are engine-specific work metrics.
    fn assert_same_verdicts(a: &AnalysisOutput, b: &AnalysisOutput, ctx: &str) {
        assert_eq!(a.candidates, b.candidates, "{ctx}");
        assert_eq!(a.raw_ranges, b.raw_ranges, "{ctx}");
        assert_eq!(a.suppressed_locks, b.suppressed_locks, "{ctx}");
        assert_eq!(a.suppressed_mutex, b.suppressed_mutex, "{ctx}");
        assert_eq!(a.suppressed_tls, b.suppressed_tls, "{ctx}");
        assert_eq!(a.suppressed_stack, b.suppressed_stack, "{ctx}");
        assert_eq!(a.suppressed_static, b.suppressed_static, "{ctx}");
    }

    #[test]
    fn sweep_matches_all_pairs_on_wide_fork() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for i in 0..24u64 {
            let t = b.task_create(&m, 0, 0x100 + i);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            // overlapping cliques of 3, plus a shared read and a
            // disjoint private write per task
            b.record_access(&m, 0xA000 + (i % 3) * 8, 8, true);
            b.record_access(&m, 0x9000, 8, false);
            b.record_access(&m, 0x20000 + i * 64, 16, true);
            b.task_end(&m, t);
        }
        let g = b.finalize();
        let r = Reachability::compute(&g);
        let seq = run(&g, &r, &SuppressOptions::default());
        assert!(!seq.candidates.is_empty());
        for threads in [1, 2, 4] {
            let sw = run_sweep(&g, &r, &SuppressOptions::default(), threads);
            assert_same_verdicts(&seq, &sw, &format!("threads={threads}"));
            // the sweep emitted at most the all-pairs count, and every
            // pair it emitted had a real footprint overlap
            assert!(sw.pairs_checked <= seq.pairs_checked);
        }
    }

    #[test]
    fn sweep_matches_with_suppressions_active() {
        // exercise lock, mutexinoutset, TLS, and stack layers at once
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for fnaddr in [0x1u64, 0x2] {
            let t = b.task_create(&m, 0, fnaddr);
            b.task_dep(t, 0xF000, 8, DepKind::Mutexinoutset);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0xF000, 8, true); // mutexinoutset
            b.record_access(&m, 0x110, 8, true); // TLS
            b.record_access(&m, 0x6F00, 8, true); // segment-local stack
            b.critical_enter(&m, 7);
            b.record_access(&m, 0xE000, 8, true); // lock-protected
            b.critical_exit(&m, 7);
            b.record_access(&m, 0xA000, 8, true); // genuine race
            b.task_end(&m, t);
        }
        let g = b.finalize();
        let r = Reachability::compute(&g);
        let seq = run(&g, &r, &SuppressOptions::default());
        assert!(seq.suppressed_mutex > 0 || seq.suppressed_tls > 0 || seq.suppressed_stack > 0);
        for threads in [1, 3] {
            let sw = run_sweep(&g, &r, &SuppressOptions::default(), threads);
            assert_same_verdicts(&seq, &sw, &format!("threads={threads}"));
        }
    }

    #[test]
    fn sweep_sharding_path_is_exercised() {
        // enough flattened intervals to cross SHARD_THRESHOLD so the
        // multi-shard code path actually runs
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for i in 0..40u64 {
            let t = b.task_create(&m, 0, 0x100 + i);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            for k in 0..10u64 {
                // strided so intervals do not coalesce; neighbours share
                // footprints across the whole address span
                b.record_access(&m, 0x10000 + (i % 8) * 0x1000 + k * 32, 8, true);
                b.record_access(&m, 0x80000 + k * 0x2000, 8, false);
            }
            b.task_end(&m, t);
        }
        let g = b.finalize();
        let r = Reachability::compute(&g);
        let n_ivs: usize =
            g.segments.iter().filter(|s| !s.sync).map(|s| s.reads.len() + s.writes.len()).sum();
        assert!(n_ivs >= super::SHARD_THRESHOLD, "test must cross the shard threshold: {n_ivs}");
        let seq = run(&g, &r, &SuppressOptions::default());
        for threads in [2, 4, 8] {
            let sw = run_sweep(&g, &r, &SuppressOptions::default(), threads);
            assert_same_verdicts(&seq, &sw, &format!("threads={threads}"));
        }
    }

    proptest::proptest! {
        /// Sweep engine output == all-pairs reference output — including
        /// every suppression counter — on random task-structured graphs.
        #[test]
        fn sweep_matches_all_pairs_on_random_graphs(
            ops in proptest::prop::collection::vec((0u8..7, 0u64..6, 0u8..2), 1..60),
        ) {
            let mut b = GraphBuilder::new();
            let m = meta(0);
            let mut live: Vec<u64> = Vec::new();
            for (op, slot, wbit) in ops {
                let write = wbit == 1;
                match op {
                    0 | 1 => {
                        let t = b.task_create(&m, 0, 0x100 + live.len() as u64);
                        if slot == 0 {
                            b.task_dep(t, 0xF000, 8, DepKind::Mutexinoutset);
                        }
                        b.task_spawn(&m, t);
                        live.push(t);
                    }
                    2 => {
                        if let Some(t) = live.pop() {
                            b.task_begin(&m, t);
                            b.record_access(&m, 0xA000 + slot * 8, 8, write);
                            b.record_access(&m, 0x110, 4, write); // TLS block
                            b.record_access(&m, 0x6F00 + slot * 8, 8, true); // below sp
                            b.task_end(&m, t);
                        }
                    }
                    3 => b.taskwait(&m),
                    4 => b.critical_enter(&m, 1 + slot % 2),
                    5 => b.critical_exit(&m, 1 + slot % 2),
                    _ => b.record_access(&m, 0xA000 + slot * 8, 8, write),
                }
            }
            for t in live.drain(..) {
                b.task_begin(&m, t);
                b.record_access(&m, 0xA000, 8, true);
                b.task_end(&m, t);
            }
            let g = b.finalize();
            let r = Reachability::compute(&g);
            for opts in [
                SuppressOptions::default(),
                SuppressOptions {
                    tls: false,
                    stack: false,
                    locks: false,
                    mutexinoutset: false,
                    static_proof: false,
                },
            ] {
                let seq = run(&g, &r, &opts);
                for threads in [1usize, 3] {
                    let sw = run_sweep(&g, &r, &opts, threads);
                    proptest::prop_assert_eq!(&seq.candidates, &sw.candidates);
                    proptest::prop_assert_eq!(seq.raw_ranges, sw.raw_ranges);
                    proptest::prop_assert_eq!(seq.suppressed_locks, sw.suppressed_locks);
                    proptest::prop_assert_eq!(seq.suppressed_mutex, sw.suppressed_mutex);
                    proptest::prop_assert_eq!(seq.suppressed_tls, sw.suppressed_tls);
                    proptest::prop_assert_eq!(seq.suppressed_stack, sw.suppressed_stack);
                    proptest::prop_assert_eq!(seq.suppressed_static, sw.suppressed_static);
                }
            }
        }
    }

    #[test]
    fn suppression_toggles_expose_raw_counts() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        for _ in 0..2 {
            let t = b.task_create(&m, 0, 0x1);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0x110, 8, true); // TLS conflict
            b.task_end(&m, t);
        }
        let g = b.finalize();
        let r = Reachability::compute(&g);
        let off = SuppressOptions {
            tls: false,
            stack: false,
            locks: false,
            mutexinoutset: false,
            static_proof: false,
        };
        let out = run(&g, &r, &off);
        assert_eq!(out.candidates.len(), 1, "naive mode reports the FP");
    }
}
