//! The Taskgrind tool plugin: recording phase glue between grindcore
//! and the segment-graph builder (paper Fig. 2).
//!
//! * The lifted superblocks of symbols matching the **ignore-list** are
//!   left uninstrumented (or, with an **instrument-list**, only matching
//!   symbols are instrumented) — §IV-A's mechanism, applied at
//!   translation time so suppressed code costs nothing per execution.
//! * Client requests from the guest runtime drive the [`GraphBuilder`].
//! * `malloc`/`calloc` are replaced with a host-side bump allocator that
//!   never recycles and records an allocation stack trace per block;
//!   `free` becomes a no-op — §IV-B's mechanism and §III-C's report
//!   support, exactly as the paper describes.

use crate::graph::{DepKind, GraphBuilder, ThreadMeta};
use crate::report::AllocBlock;
use grindcore::creq;
use grindcore::tool::{
    instrument_mem_accesses_filtered, pattern_matches, BlockMeta, FnReplacement, SyncKind, Tool,
};
use grindcore::{Tid, VmCore};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use tga::module::Module;
use tga_analysis::StaticFacts;
use vex_ir::IrBlock;

const REPL_MALLOC: u32 = 1;
const REPL_CALLOC: u32 = 2;
const REPL_FREE: u32 = 3;
const REPL_FAST_ALLOC: u32 = 4;
const REPL_FAST_FREE: u32 = 5;

/// The default ignore-list: the guest runtime and libc internals
/// (the paper's list "contains symbols prefixed with __kmp").
pub fn default_ignore_list() -> Vec<String> {
    [
        "__kmp*",
        "__libc*",
        "__cilk*",
        "__tsan*",
        "__malloc*",
        "__fmt*",
        "omp_*",
        "_start",
        "malloc",
        "free",
        "calloc",
        "memset",
        "memcpy",
        "strlen",
        "strcmp",
        "atoi",
        "printf",
        "puts",
        "putchar",
        "exit",
        "abort",
        "rand",
        "tg_set_deferrable",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

/// Recording-phase options.
#[derive(Clone, Debug)]
pub struct RecordOptions {
    /// Symbols whose accesses are never recorded.
    pub ignore_list: Vec<String>,
    /// If non-empty, only these symbols are recorded.
    pub instrument_list: Vec<String>,
    /// Replace malloc/free (recycling suppression, §IV-B). Turning this
    /// off reproduces the naive tool of §IV for the E6 ablation.
    pub replace_allocator: bool,
    /// Also replace the runtime's built-in allocator
    /// (`__kmp_fast_alloc`/`__kmp_fast_free`). The paper's Taskgrind does
    /// NOT support built-in allocators ("kept as future work", §IV-B);
    /// turning this off reproduces that limitation — task capture
    /// payloads recycle and independent tasks alias payload addresses.
    pub replace_runtime_allocator: bool,
    /// Use the static-analysis layer (`tga-analysis`) to prune
    /// instrumentation of accesses proven thread-private or read-only.
    /// `--no-static-filter` on the CLI turns this off.
    pub static_filter: bool,
    /// Use the static concurrency pass: lock findings in `tgrind lint`
    /// and statically-proven guard masks on recorded accesses (the
    /// sweep's [`crate::analysis::Suppression::StaticProof`] layer).
    /// `--no-static-concurrency` on the CLI turns this off. Independent
    /// of `static_filter`, which gates only the memory-classification
    /// pruning — so toggling this never changes which accesses are
    /// recorded.
    pub static_concurrency: bool,
    /// Precomputed static facts. When `None` and `static_filter` is on,
    /// [`crate::check_module`] runs the analysis itself.
    pub static_facts: Option<Arc<StaticFacts>>,
    /// Buffer accesses per execution context and bulk-build the interval
    /// trees at segment close instead of one BTreeMap insert per access.
    /// `TG_NO_BULK=1` restores the per-access reference path.
    pub bulk_ingest: bool,
}

impl Default for RecordOptions {
    fn default() -> Self {
        RecordOptions {
            ignore_list: default_ignore_list(),
            instrument_list: Vec::new(),
            replace_allocator: true,
            replace_runtime_allocator: true,
            static_filter: true,
            static_concurrency: true,
            static_facts: None,
            bulk_ingest: std::env::var_os("TG_NO_BULK").is_none(),
        }
    }
}

/// State accumulated during the recording phase.
pub struct Recording {
    pub builder: GraphBuilder,
    pub blocks: Vec<AllocBlock>,
    pub module: Option<Arc<Module>>,
    /// Accesses recorded (after ignore-list filtering).
    pub accesses_recorded: u64,
    /// Superblocks skipped entirely by symbol filtering.
    pub blocks_skipped: u64,
    pub blocks_instrumented: u64,
    /// Access sites (static load/store positions in translated blocks)
    /// whose callbacks the static filter removed.
    pub sites_pruned: u64,
    /// Access sites that did receive a callback.
    pub sites_instrumented: u64,
    opts: RecordOptions,
}

impl Recording {
    /// Approximate host bytes held by recording structures.
    pub fn heap_bytes(&self) -> u64 {
        let seg_bytes: u64 = self.builder.segments.iter().map(|s| s.bytes()).sum();
        let block_bytes: u64 =
            self.blocks.iter().map(|b| 32 + b.alloc_stack.len() as u64 * 8).sum();
        seg_bytes + self.builder.pending_bytes() + block_bytes
    }
}

/// The Taskgrind grindcore plugin. Cloning shares the underlying state,
/// so a harness keeps one handle while the VM drives the other.
#[derive(Clone)]
pub struct TaskgrindTool {
    state: Rc<RefCell<Recording>>,
}

impl TaskgrindTool {
    pub fn new(opts: RecordOptions) -> TaskgrindTool {
        let mut builder = GraphBuilder::new();
        builder.set_bulk_ingest(opts.bulk_ingest);
        TaskgrindTool {
            state: Rc::new(RefCell::new(Recording {
                builder,
                blocks: Vec::new(),
                module: None,
                accesses_recorded: 0,
                blocks_skipped: 0,
                blocks_instrumented: 0,
                sites_pruned: 0,
                sites_instrumented: 0,
                opts,
            })),
        }
    }

    /// Shared handle to the recording state.
    pub fn state(&self) -> Rc<RefCell<Recording>> {
        self.state.clone()
    }

    fn should_instrument(&self, sym: Option<&str>) -> bool {
        let st = self.state.borrow();
        let Some(name) = sym else { return true };
        if !st.opts.instrument_list.is_empty() {
            return st.opts.instrument_list.iter().any(|p| pattern_matches(p, name));
        }
        !st.opts.ignore_list.iter().any(|p| pattern_matches(p, name))
    }
}

/// Mirror a parallel-runtime client request onto the tg-obs *guest*
/// track: one Chrome-trace thread per guest thread, carrying spans for
/// parallel regions / implicit tasks / explicit tasks / critical
/// sections and instants for the point events, so a run's task-segment
/// timeline is visually inspectable in Perfetto. Only called when
/// tracing is enabled; purely observational (the graph builder never
/// sees these).
fn trace_guest_creq(tid: Tid, code: u64, args: [u64; 5]) {
    use tg_obs::trace::{self, PID_GUEST};
    let t = tid as u32;
    match code {
        creq::PARALLEL_BEGIN => trace::begin("parallel", PID_GUEST, t),
        creq::PARALLEL_END => trace::end(PID_GUEST, t),
        creq::IMPLICIT_TASK_BEGIN => {
            trace::begin(format!("implicit task r{}", args[0]), PID_GUEST, t)
        }
        creq::IMPLICIT_TASK_END => trace::end(PID_GUEST, t),
        creq::TASK_CREATE => trace::instant("task create", PID_GUEST, t, vec![("fn", args[0])]),
        creq::TASK_SPAWN => trace::instant("task spawn", PID_GUEST, t, vec![("task", args[0])]),
        creq::TASK_BEGIN => trace::begin(format!("task {}", args[0]), PID_GUEST, t),
        creq::TASK_END => trace::end(PID_GUEST, t),
        creq::TASK_FULFILL => trace::instant("task fulfill", PID_GUEST, t, vec![("task", args[0])]),
        creq::TASKWAIT => trace::instant("taskwait", PID_GUEST, t, Vec::new()),
        creq::TASKGROUP_BEGIN => trace::begin("taskgroup", PID_GUEST, t),
        creq::TASKGROUP_END => trace::end(PID_GUEST, t),
        creq::BARRIER => trace::instant("barrier", PID_GUEST, t, vec![("id", args[0])]),
        creq::CRITICAL_ENTER => trace::begin(format!("critical {:#x}", args[0]), PID_GUEST, t),
        creq::CRITICAL_EXIT => trace::end(PID_GUEST, t),
        creq::TASK_DEP => trace::instant("task dep", PID_GUEST, t, vec![("task", args[0])]),
        _ => {}
    }
}

fn thread_meta(core: &VmCore, tid: Tid) -> ThreadMeta {
    let t = &core.threads[tid];
    ThreadMeta {
        tid,
        sp: t.reg(tga::reg::SP),
        stack_low: t.stack_low,
        stack_high: t.stack_high,
        tls_base: t.tls_base,
        tls_size: t.tls_size,
        tls_gen: t.tls_gen,
    }
}

impl Tool for TaskgrindTool {
    fn name(&self) -> &'static str {
        "taskgrind"
    }

    fn instrument(&mut self, block: IrBlock, meta: &BlockMeta) -> IrBlock {
        if self.should_instrument(meta.fn_symbol.as_deref()) {
            let mut st = self.state.borrow_mut();
            st.blocks_instrumented += 1;
            let facts = if st.opts.static_filter { st.opts.static_facts.clone() } else { None };
            let (mut pruned, mut kept) = (0u64, 0u64);
            let block = instrument_mem_accesses_filtered(block, &mut |pc, write| {
                let keep = match &facts {
                    Some(f) => !f.is_safe_access(pc, write),
                    None => true,
                };
                if keep {
                    kept += 1;
                } else {
                    pruned += 1;
                }
                keep
            });
            st.sites_pruned += pruned;
            st.sites_instrumented += kept;
            block
        } else {
            self.state.borrow_mut().blocks_skipped += 1;
            block
        }
    }

    fn mem_access(
        &mut self,
        core: &mut VmCore,
        tid: Tid,
        addr: u64,
        size: u64,
        write: bool,
        pc: u64,
    ) {
        let meta = thread_meta(core, tid);
        let mut st = self.state.borrow_mut();
        st.accesses_recorded += 1;
        let mask = match (&st.opts.static_facts, st.opts.static_concurrency) {
            (Some(f), true) => f.guard_mask(pc),
            _ => 0,
        };
        st.builder.record_access_masked(&meta, addr, size, write, mask);
    }

    fn sync_point(&mut self, _core: &mut VmCore, _tid: Tid, kind: SyncKind, _seq: u64) {
        // segment-closing sync events are the retirement epochs of the
        // streaming engine (no-op in batch mode); also sample the
        // tool-structure high-water mark for both engines
        if kind.closes_segments() {
            let mut st = self.state.borrow_mut();
            st.builder.note_peak();
            st.builder.maybe_retire();
        }
    }

    fn client_request(&mut self, core: &mut VmCore, tid: Tid, code: u64, args: [u64; 5]) -> u64 {
        let meta = thread_meta(core, tid);
        let mut st = self.state.borrow_mut();
        if st.module.is_none() {
            st.module = Some(core.module.clone());
        }
        let b = &mut st.builder;
        if tg_obs::trace::enabled() {
            trace_guest_creq(tid, code, args);
        }
        match code {
            creq::PARALLEL_BEGIN => b.parallel_begin(&meta, args[0]),
            creq::PARALLEL_END => {
                b.parallel_end(&meta, args[0]);
                0
            }
            creq::IMPLICIT_TASK_BEGIN => {
                b.implicit_task_begin(&meta, args[0], args[1]);
                0
            }
            creq::IMPLICIT_TASK_END => {
                b.implicit_task_end(&meta, args[0], args[1]);
                0
            }
            creq::TASK_CREATE => b.task_create(&meta, args[0], args[1]),
            creq::TASK_DEP => {
                b.task_dep(args[0], args[1], args[2], DepKind::from_u64(args[3]));
                0
            }
            creq::TASK_BEGIN => {
                b.task_begin(&meta, args[0]);
                0
            }
            creq::TASK_END => {
                b.task_end(&meta, args[0]);
                0
            }
            creq::TASK_SPAWN => {
                b.task_spawn(&meta, args[0]);
                0
            }
            creq::TASK_FULFILL => {
                b.task_fulfill(&meta, args[0]);
                0
            }
            creq::TASKWAIT => {
                b.taskwait(&meta);
                0
            }
            creq::TASKGROUP_BEGIN => {
                b.taskgroup_begin(&meta);
                0
            }
            creq::TASKGROUP_END => {
                b.taskgroup_end(&meta);
                0
            }
            creq::BARRIER => {
                b.barrier(&meta, args[0]);
                0
            }
            creq::CRITICAL_ENTER => {
                b.critical_enter(&meta, args[0]);
                0
            }
            creq::CRITICAL_EXIT => {
                b.critical_exit(&meta, args[0]);
                0
            }
            creq::USER_DEFERRABLE => {
                b.set_user_deferrable(args[0] != 0);
                0
            }
            _ => 0,
        }
    }

    fn replacements(&self) -> Vec<FnReplacement> {
        let st = self.state.borrow();
        let mut out = Vec::new();
        if st.opts.replace_allocator {
            out.push(FnReplacement { pattern: "malloc".into(), id: REPL_MALLOC });
            out.push(FnReplacement { pattern: "calloc".into(), id: REPL_CALLOC });
            out.push(FnReplacement { pattern: "free".into(), id: REPL_FREE });
        }
        if st.opts.replace_runtime_allocator {
            out.push(FnReplacement { pattern: "__kmp_fast_alloc".into(), id: REPL_FAST_ALLOC });
            out.push(FnReplacement { pattern: "__kmp_fast_free".into(), id: REPL_FAST_FREE });
        }
        out
    }

    fn replaced_call(&mut self, core: &mut VmCore, tid: Tid, id: u32, args: [u64; 8]) -> u64 {
        match id {
            REPL_MALLOC | REPL_CALLOC | REPL_FAST_ALLOC => {
                let size = if id == REPL_CALLOC {
                    args[0].wrapping_mul(args[1]).max(1)
                } else {
                    args[0].max(1)
                };
                // Never recycle: fresh addresses for every allocation.
                let base = core.alloc_raw(size);
                let trace = core.stack_trace(tid);
                let mut st = self.state.borrow_mut();
                st.blocks.push(AllocBlock { base, size, alloc_stack: trace });
                base
            }
            REPL_FREE | REPL_FAST_FREE => 0, // frees are no-ops (paper §IV-B)
            _ => 0,
        }
    }

    fn program_end(&mut self, core: &mut VmCore) {
        let mut st = self.state.borrow_mut();
        if st.module.is_none() {
            st.module = Some(core.module.clone());
        }
    }

    fn tool_bytes(&self) -> u64 {
        self.state.borrow().heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignore_list_defaults_cover_runtime_prefixes() {
        let l = default_ignore_list();
        let hit = |name: &str| l.iter().any(|p| pattern_matches(p, name));
        assert!(hit("__kmp_task_alloc"));
        assert!(hit("__libc_lock"));
        assert!(hit("__cilk_sync"));
        assert!(hit("malloc"));
        assert!(hit("omp_get_thread_num"));
        assert!(!hit("main"));
        assert!(!hit("main._omp_task.1"));
        assert!(!hit("compute_forces"));
    }

    #[test]
    fn instrument_list_overrides_ignore_list() {
        let tool = TaskgrindTool::new(RecordOptions {
            instrument_list: vec!["main*".into()],
            ..Default::default()
        });
        assert!(tool.should_instrument(Some("main")));
        assert!(tool.should_instrument(Some("main._omp_task.2")));
        assert!(!tool.should_instrument(Some("other_fn")));
        assert!(!tool.should_instrument(Some("__kmp_barrier")));
    }

    #[test]
    fn unknown_symbols_are_instrumented() {
        let tool = TaskgrindTool::new(RecordOptions::default());
        assert!(tool.should_instrument(None), "no symbol info ⇒ instrument (no false negatives)");
    }
}
