//! Happens-before reachability over the segment graph.
//!
//! Algorithm 1 asks, for every segment pair, whether a path exists
//! between them. The analysis-phase workhorse is a transitive-closure
//! bitset computed once in topological order (`O(V·E/64)` words); an
//! on-demand DFS is kept both as the oracle for tests and as the
//! baseline for the E9 ablation bench.

use crate::graph::{SegId, SegmentGraph};

/// Precomputed transitive closure.
pub struct Reachability {
    n: usize,
    words: usize,
    /// Row-major bitsets: `bits[i*words..(i+1)*words]` = nodes reachable
    /// from node `i` (excluding `i` itself unless on a cycle).
    bits: Vec<u64>,
}

impl Reachability {
    /// Compute the closure. The graph must be a DAG (event-ordered
    /// construction guarantees it); cycles would make every involved
    /// node mutually "ordered", which is conservative but flagged in
    /// debug builds.
    pub fn compute(g: &SegmentGraph) -> Reachability {
        Reachability::compute_edges(g.n_nodes(), &g.edges)
    }

    /// Compute the closure from a bare edge list over `n` nodes.
    /// The streaming engine uses this on per-epoch edge snapshots, where
    /// no `SegmentGraph` exists yet; duplicate edges are harmless.
    pub fn compute_edges(n: usize, edges: &[(SegId, SegId)]) -> Reachability {
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];
        let mut succ: Vec<Vec<SegId>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            succ[a as usize].push(b);
        }

        // Kahn topological order.
        let mut indeg = vec![0u32; n];
        for &(_, b) in edges {
            indeg[b as usize] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        let mut qi = 0;
        while qi < queue.len() {
            let u = queue[qi];
            qi += 1;
            topo.push(u);
            for &v in &succ[u] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v as usize);
                }
            }
        }
        debug_assert_eq!(topo.len(), n, "segment graph must be acyclic");

        // Propagate in reverse topological order.
        for &u in topo.iter().rev() {
            for &v in &succ[u] {
                let v = v as usize;
                bits[u * words + v / 64] |= 1u64 << (v % 64);
                // row_u |= row_v
                let (ur, vr) = (u * words, v * words);
                for w in 0..words {
                    let x = bits[vr + w];
                    bits[ur + w] |= x;
                }
            }
        }
        Reachability { n, words, bits }
    }

    /// Is there a path `a → b`?
    pub fn reaches(&self, a: SegId, b: SegId) -> bool {
        let (a, b) = (a as usize, b as usize);
        debug_assert!(a < self.n && b < self.n);
        self.bits[a * self.words + b / 64] >> (b % 64) & 1 == 1
    }

    /// Are the two segments ordered either way?
    pub fn ordered(&self, a: SegId, b: SegId) -> bool {
        a == b || self.reaches(a, b) || self.reaches(b, a)
    }

    /// Bytes held by the closure (memory accounting).
    pub fn heap_bytes(&self) -> u64 {
        (self.bits.len() * 8) as u64
    }
}

/// On-demand DFS reachability — the oracle and ablation baseline.
pub fn dfs_reaches(g: &SegmentGraph, from: SegId, to: SegId) -> bool {
    if from == to {
        return false;
    }
    let succ = g.successors();
    let mut seen = vec![false; g.n_nodes()];
    let mut stack = vec![from as usize];
    while let Some(u) = stack.pop() {
        for &v in &succ[u] {
            if v == to {
                return true;
            }
            if !seen[v as usize] {
                seen[v as usize] = true;
                stack.push(v as usize);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, ThreadMeta};
    use proptest::prelude::*;

    fn chain_graph(n: usize) -> SegmentGraph {
        // build via the builder to keep Segment construction in one place
        let mut b = GraphBuilder::new();
        let m = ThreadMeta::default();
        b.record_access(&m, 0, 1, false); // creates root segment 0
        for _ in 1..n {
            b.critical_enter(&m, 1);
        }
        b.finalize()
    }

    #[test]
    fn chain_is_totally_ordered() {
        let g = chain_graph(5);
        let r = Reachability::compute(&g);
        for i in 0..g.n_nodes() as u32 {
            for j in 0..g.n_nodes() as u32 {
                assert_eq!(r.reaches(i, j), i < j, "chain {i}->{j}");
                assert_eq!(dfs_reaches(&g, i, j), i < j);
            }
        }
    }

    #[test]
    fn fork_is_unordered() {
        let mut b = GraphBuilder::new();
        let m = ThreadMeta::default();
        let t1 = b.task_create(&m, 0, 0);
        b.task_spawn(&m, t1);
        let t2 = b.task_create(&m, 0, 0);
        b.task_spawn(&m, t2);
        b.task_begin(&m, t1);
        b.task_end(&m, t1);
        b.task_begin(&m, t2);
        b.task_end(&m, t2);
        let g = b.finalize();
        let r = Reachability::compute(&g);
        let s1 = g.tasks[t1 as usize].first_seg.unwrap();
        let s2 = g.tasks[t2 as usize].first_seg.unwrap();
        assert!(!r.ordered(s1, s2));
        assert!(!dfs_reaches(&g, s1, s2) && !dfs_reaches(&g, s2, s1));
    }

    proptest! {
        /// Closure agrees with DFS on random task-structured graphs.
        #[test]
        fn closure_matches_dfs(ops in prop::collection::vec(0u8..6, 1..40)) {
            let mut b = GraphBuilder::new();
            let m = ThreadMeta::default();
            let mut live: Vec<u64> = Vec::new();
            for op in ops {
                match op {
                    0 | 1 => {
                        let t = b.task_create(&m, 0, 0);
                        b.task_spawn(&m, t);
                        live.push(t);
                    }
                    2 => {
                        if let Some(t) = live.pop() {
                            b.task_begin(&m, t);
                            b.record_access(&m, t * 8, 8, true);
                            b.task_end(&m, t);
                        }
                    }
                    3 => b.taskwait(&m),
                    4 => b.critical_enter(&m, 1),
                    _ => b.critical_exit(&m, 1),
                }
            }
            for t in live.drain(..) {
                b.task_begin(&m, t);
                b.task_end(&m, t);
            }
            let g = b.finalize();
            let r = Reachability::compute(&g);
            let n = g.n_nodes() as u32;
            for i in 0..n {
                for j in 0..n {
                    prop_assert_eq!(r.reaches(i, j), dfs_reaches(&g, i, j), "{} -> {}", i, j);
                }
            }
        }
    }
}
