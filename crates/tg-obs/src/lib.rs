//! tg-obs — the observability layer shared by grindcore, taskgrind, and the
//! CLI.
//!
//! Three facilities, all zero-cost when disabled:
//!
//! 1. **Metrics registry** ([`metrics::Registry`]): a flat, ordered map of
//!    named, typed metrics (`vm.instrs`, `dispatch.chain_hits`,
//!    `analysis.pairs_checked`, ...). Subsystems *publish* their final
//!    counters into a registry at report time — the hot paths keep their
//!    existing plain-integer fields and are never slowed down — and the CLI
//!    renders its `==` summary lines and the `--metrics-json` dump from the
//!    registry, so the human-readable and machine-readable views can never
//!    disagree.
//!
//! 2. **Span tracer** ([`trace`]): a global ring-buffer event sink recording
//!    begin/end spans, instants, and counter samples over the pipeline
//!    phases (lift, instrument, compile, dispatch slices, tool callbacks,
//!    sweep epochs, streaming retirement/backpressure) plus a *guest* track
//!    mirroring the task-segment timeline. Exported as Chrome-trace JSON
//!    loadable in Perfetto (`--trace-out`). When tracing has not been
//!    enabled every hook is a single relaxed atomic load and a branch.
//!
//! 3. **JSON helpers** ([`json`]): string escaping for the hand-written
//!    emitters (the workspace's `serde` is an offline no-op shim) and a
//!    minimal recursive-descent parser used by tests to validate the
//!    emitted documents.
//!
//! The crate depends only on `std` so every layer of the stack can link it
//! without cycles.
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod metrics;
pub mod trace;

pub use metrics::{Registry, Value};
pub use trace::{SpanGuard, TraceEvent};
