//! Global span tracer with a bounded ring-buffer sink and Chrome-trace
//! export.
//!
//! The tracer is process-global and **off by default**: every hook first
//! calls [`enabled`], a single relaxed atomic load, and does nothing when
//! tracing has not been [`init`]ialized — so instrumented hot paths cost
//! one predictable branch. When enabled, events go into a bounded
//! `VecDeque` ring (oldest events are dropped on overflow) guarded by a
//! mutex; the hooked phases are coarse (translations, scheduler slices,
//! tool callbacks, epochs), never per-instruction or per-memory-access.
//!
//! Two tracks are modelled as Chrome-trace *processes*:
//!
//! * [`PID_HOST`] — the DBI engine itself: translation sub-phases
//!   (lift/iropt/instrument/compile), dispatch slices, tool callbacks,
//!   analysis epochs, report generation.
//! * [`PID_GUEST`] — the guest's task-segment timeline: one Chrome *thread*
//!   per guest thread carrying begin/end spans for parallel regions,
//!   implicit tasks and explicit tasks, instants for create/spawn/
//!   taskwait/barrier, and a dedicated retirement track.
//!
//! Export ([`export_chrome_json`]) merges, sorts by timestamp, repairs
//! truncated span nesting (unmatched `E` events at the start of a ring
//! that overflowed are dropped; unclosed `B` events are closed at the
//! final timestamp), and emits `{"traceEvents": [...]}` JSON loadable in
//! Perfetto or `chrome://tracing`.

use crate::json::{escape, JsonValue};
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Chrome-trace process id for host (engine) phase spans.
pub const PID_HOST: u32 = 1;
/// Chrome-trace process id for the guest task-segment timeline.
pub const PID_GUEST: u32 = 2;
/// Synthetic guest-side thread id carrying epoch-retirement instants.
pub const TID_RETIRE: u32 = 999;

/// One recorded trace event (Chrome-trace phases `B`, `E`, `i`, `C`).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    seq: u64,
    /// Microseconds since [`init`].
    pub ts_us: u64,
    /// Chrome-trace phase: `B` begin span, `E` end span, `i` instant,
    /// `C` counter sample.
    pub ph: char,
    /// Event name (span/instant/counter label).
    pub name: Cow<'static, str>,
    /// Chrome-trace process id ([`PID_HOST`] or [`PID_GUEST`]).
    pub pid: u32,
    /// Track id within the process (host thread or guest thread).
    pub tid: u32,
    /// Numeric payload rendered into the Chrome `args` object.
    pub args: Vec<(&'static str, u64)>,
}

struct TraceState {
    ring: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
    seq: u64,
    /// `(pid, tid) -> track name` metadata, kept out of the ring so it
    /// survives overflow.
    thread_names: BTreeMap<(u32, u32), String>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<TraceState>> = Mutex::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_HOST_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static HOST_TID: u32 = NEXT_HOST_TID.fetch_add(1, Ordering::Relaxed);
}

/// Default ring capacity used by [`init_default`]: enough for every
/// translation and scheduler slice of the bundled examples.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// Is tracing currently enabled? One relaxed atomic load; every hook in
/// the engine gates on this.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable tracing with a ring buffer holding at most `capacity` events.
/// Any previously buffered events are discarded.
pub fn init(capacity: usize) {
    let _ = EPOCH.set(Instant::now());
    let mut st = STATE.lock().unwrap();
    *st = Some(TraceState {
        ring: VecDeque::with_capacity(capacity.min(1 << 20)),
        cap: capacity.max(16),
        dropped: 0,
        seq: 0,
        thread_names: BTreeMap::new(),
    });
    ENABLED.store(true, Ordering::SeqCst);
}

/// Enable tracing with [`DEFAULT_CAPACITY`].
pub fn init_default() {
    init(DEFAULT_CAPACITY);
}

/// Disable tracing and discard all buffered events.
pub fn shutdown() {
    ENABLED.store(false, Ordering::SeqCst);
    *STATE.lock().unwrap() = None;
}

/// Number of events dropped so far due to ring overflow.
pub fn dropped() -> u64 {
    STATE.lock().unwrap().as_ref().map_or(0, |s| s.dropped)
}

/// Number of events currently buffered.
pub fn buffered() -> usize {
    STATE.lock().unwrap().as_ref().map_or(0, |s| s.ring.len())
}

fn now_us() -> u64 {
    EPOCH.get().map_or(0, |e| e.elapsed().as_micros() as u64)
}

/// The stable small-integer track id of the calling host thread.
pub fn host_tid() -> u32 {
    HOST_TID.with(|t| *t)
}

fn push(ph: char, name: Cow<'static, str>, pid: u32, tid: u32, args: Vec<(&'static str, u64)>) {
    let ts_us = now_us();
    let mut guard = STATE.lock().unwrap();
    if let Some(st) = guard.as_mut() {
        if st.ring.len() >= st.cap {
            st.ring.pop_front();
            st.dropped += 1;
        }
        let seq = st.seq;
        st.seq += 1;
        st.ring.push_back(TraceEvent { seq, ts_us, ph, name, pid, tid, args });
    }
}

/// Name a track (a `(pid, tid)` pair) in the exported trace. Metadata is
/// stored outside the ring, so it survives overflow; renaming overwrites.
pub fn name_track(pid: u32, tid: u32, name: &str) {
    if !enabled() {
        return;
    }
    let mut guard = STATE.lock().unwrap();
    if let Some(st) = guard.as_mut() {
        st.thread_names.insert((pid, tid), name.to_string());
    }
}

/// RAII span: records `B` on construction and `E` on drop. Inert when
/// tracing is disabled.
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard {
    live: bool,
    pid: u32,
    tid: u32,
}

impl SpanGuard {
    /// A guard that records nothing.
    pub fn inactive() -> SpanGuard {
        SpanGuard { live: false, pid: 0, tid: 0 }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.live {
            push('E', Cow::Borrowed(""), self.pid, self.tid, Vec::new());
        }
    }
}

/// Open a span on an explicit track. Prefer [`host_span`] for engine
/// phases.
pub fn span(name: impl Into<Cow<'static, str>>, pid: u32, tid: u32) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inactive();
    }
    push('B', name.into(), pid, tid, Vec::new());
    SpanGuard { live: true, pid, tid }
}

/// Open a span on the calling host thread's track.
pub fn host_span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inactive();
    }
    span(name, PID_HOST, host_tid())
}

/// Open a span on the calling host thread's track, attaching numeric
/// args to the begin event.
pub fn host_span_args(
    name: impl Into<Cow<'static, str>>,
    args: Vec<(&'static str, u64)>,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inactive();
    }
    let (pid, tid) = (PID_HOST, host_tid());
    push('B', name.into(), pid, tid, args);
    SpanGuard { live: true, pid, tid }
}

/// Record an explicit span begin (for spans whose begin and end are seen
/// at different call sites, e.g. guest task segments).
pub fn begin(name: impl Into<Cow<'static, str>>, pid: u32, tid: u32) {
    if enabled() {
        push('B', name.into(), pid, tid, Vec::new());
    }
}

/// Record an explicit span end, closing the innermost open span of the
/// track.
pub fn end(pid: u32, tid: u32) {
    if enabled() {
        push('E', Cow::Borrowed(""), pid, tid, Vec::new());
    }
}

/// Record a thread-scoped instant event with numeric args.
pub fn instant(
    name: impl Into<Cow<'static, str>>,
    pid: u32,
    tid: u32,
    args: Vec<(&'static str, u64)>,
) {
    if enabled() {
        push('i', name.into(), pid, tid, args);
    }
}

/// Record a counter sample (rendered by Perfetto as a value-over-time
/// track).
pub fn counter(name: &'static str, pid: u32, tid: u32, value: u64) {
    if enabled() {
        push('C', Cow::Borrowed(name), pid, tid, vec![("value", value)]);
    }
}

/// Drain the ring and render a Chrome-trace JSON document.
///
/// The export pass makes the document well-formed regardless of ring
/// overflow: events are sorted by `(ts, seq)`, an `E` with no matching
/// open `B` on its track (its begin was evicted) is dropped, and every
/// still-open `B` is closed at the final observed timestamp. Metadata
/// (`M`) events name the host/guest processes and any track registered
/// via [`name_track`].
pub fn export_chrome_json() -> String {
    let (mut events, thread_names, dropped) = {
        let mut guard = STATE.lock().unwrap();
        match guard.as_mut() {
            Some(st) => (
                std::mem::take(&mut st.ring).into_iter().collect::<Vec<_>>(),
                std::mem::take(&mut st.thread_names),
                st.dropped,
            ),
            None => (Vec::new(), BTreeMap::new(), 0),
        }
    };
    events.sort_by_key(|e| (e.ts_us, e.seq));
    let max_ts = events.last().map_or(0, |e| e.ts_us);

    // Repair span nesting per track.
    let mut stacks: BTreeMap<(u32, u32), Vec<Cow<'static, str>>> = BTreeMap::new();
    let mut repaired: Vec<TraceEvent> = Vec::with_capacity(events.len());
    for ev in events {
        let track = (ev.pid, ev.tid);
        match ev.ph {
            'B' => {
                stacks.entry(track).or_default().push(ev.name.clone());
                repaired.push(ev);
            }
            'E' => {
                let stack = stacks.entry(track).or_default();
                // When the matching B fell off the ring, drop the orphan E.
                if let Some(open_name) = stack.pop() {
                    let mut ev = ev;
                    if ev.name.is_empty() {
                        ev.name = open_name;
                    }
                    repaired.push(ev);
                }
            }
            _ => repaired.push(ev),
        }
    }
    // Close spans whose E was never recorded (truncated run).
    let mut seq = repaired.last().map_or(0, |e| e.seq) + 1;
    for ((pid, tid), stack) in &mut stacks {
        while let Some(name) = stack.pop() {
            repaired.push(TraceEvent {
                seq,
                ts_us: max_ts,
                ph: 'E',
                name,
                pid: *pid,
                tid: *tid,
                args: Vec::new(),
            });
            seq += 1;
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut meta = |out: &mut String, pid: u32, tid: Option<u32>, key: &str, name: &str| {
        let sep = if std::mem::take(&mut first) { "" } else { ",\n" };
        let tid = tid.unwrap_or(0);
        let _ = write!(
            out,
            "{sep}{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{key}\",\"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        );
    };
    meta(&mut out, PID_HOST, None, "process_name", "taskgrind host");
    meta(&mut out, PID_GUEST, None, "process_name", "guest");
    for ((pid, tid), name) in &thread_names {
        meta(&mut out, *pid, Some(*tid), "thread_name", name);
    }
    for ev in &repaired {
        let sep = if std::mem::take(&mut first) { "" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}{{\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{},\"name\":\"{}\"",
            ev.ph,
            ev.ts_us,
            ev.pid,
            ev.tid,
            escape(&ev.name)
        );
        if ev.ph == 'i' {
            out.push_str(",\"s\":\"t\"");
        }
        if !ev.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in ev.args.iter().enumerate() {
                let comma = if i == 0 { "" } else { "," };
                let _ = write!(out, "{comma}\"{k}\":{v}");
            }
            out.push('}');
        }
        out.push('}');
    }
    let _ = write!(out, "\n],\"displayTimeUnit\":\"ms\",\"droppedEvents\":{dropped}}}\n");
    out
}

/// Aggregate facts about a validated Chrome trace (see
/// [`validate_chrome_trace`]).
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Total non-metadata events.
    pub events: usize,
    /// Number of `B` span-begin events.
    pub begins: usize,
    /// Number of `E` span-end events.
    pub ends: usize,
    /// Number of `i` instant events.
    pub instants: usize,
    /// Number of `C` counter samples.
    pub counters: usize,
    /// Distinct event names seen (excluding metadata).
    pub names: BTreeSet<String>,
    /// Distinct process ids seen.
    pub pids: BTreeSet<u64>,
}

/// Parse and structurally validate a Chrome-trace JSON document:
/// `traceEvents` must be an array of objects carrying `ph`/`pid`/`tid`,
/// timestamps must be monotone non-decreasing per `(pid, tid)` track, and
/// `B`/`E` events must pair up (depth never negative, zero at the end of
/// every track). Returns aggregate counts for further assertions.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = crate::json::parse(text)?;
    let events =
        doc.get("traceEvents").and_then(JsonValue::as_array).ok_or("missing traceEvents array")?;
    let mut summary = TraceSummary::default();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut depth: BTreeMap<(u64, u64), i64> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid =
            ev.get("pid").and_then(JsonValue::as_u64).ok_or_else(|| format!("event {i}: pid"))?;
        let tid =
            ev.get("tid").and_then(JsonValue::as_u64).ok_or_else(|| format!("event {i}: tid"))?;
        if ph == "M" {
            continue;
        }
        let ts =
            ev.get("ts").and_then(JsonValue::as_f64).ok_or_else(|| format!("event {i}: ts"))?;
        if ts < 0.0 {
            return Err(format!("event {i}: negative ts"));
        }
        let track = (pid, tid);
        if let Some(&prev) = last_ts.get(&track) {
            if ts < prev {
                return Err(format!("event {i}: ts regressed on track {track:?}"));
            }
        }
        last_ts.insert(track, ts);
        summary.events += 1;
        summary.pids.insert(pid);
        if let Some(name) = ev.get("name").and_then(JsonValue::as_str) {
            summary.names.insert(name.to_string());
        }
        let d = depth.entry(track).or_insert(0);
        match ph {
            "B" => {
                summary.begins += 1;
                *d += 1;
            }
            "E" => {
                summary.ends += 1;
                *d -= 1;
                if *d < 0 {
                    return Err(format!("event {i}: E without open B on track {track:?}"));
                }
            }
            "i" => summary.instants += 1,
            "C" => summary.counters += 1,
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    for (track, d) in depth {
        if d != 0 {
            return Err(format!("track {track:?}: {d} unclosed span(s)"));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global; serialize tests that toggle it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _g = locked();
        shutdown();
        assert!(!enabled());
        {
            let _s = host_span("lift");
        }
        instant("x", PID_HOST, 0, vec![]);
        counter("c", PID_HOST, 0, 1);
        init(1024);
        assert_eq!(buffered(), 0);
        shutdown();
    }

    #[test]
    fn spans_pair_and_validate() {
        let _g = locked();
        init(1024);
        name_track(PID_HOST, host_tid(), "host-main");
        {
            let _outer = host_span("translate");
            let _inner = host_span("lift");
            instant("imark", PID_HOST, host_tid(), vec![("addr", 0x40)]);
        }
        begin("task 3", PID_GUEST, 1);
        counter("live_segments", PID_GUEST, 0, 5);
        end(PID_GUEST, 1);
        let json = export_chrome_json();
        shutdown();
        let s = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(s.begins, 3);
        assert_eq!(s.ends, 3);
        assert_eq!(s.instants, 1);
        assert_eq!(s.counters, 1);
        assert!(s.names.contains("translate"));
        assert!(s.names.contains("task 3"));
        assert!(s.pids.contains(&(PID_HOST as u64)) && s.pids.contains(&(PID_GUEST as u64)));
    }

    #[test]
    fn overflow_repair_keeps_trace_well_formed() {
        let _g = locked();
        init(16);
        // 40 nested-free span pairs on one track: the ring keeps only the
        // last 16 events, so some E's lose their B — export must drop
        // those orphans.
        for i in 0..40u64 {
            begin(format!("span {i}"), PID_HOST, 7);
            end(PID_HOST, 7);
        }
        // And one never-closed span: export must synthesize its E.
        begin("unclosed", PID_HOST, 8);
        assert!(dropped() > 0);
        let json = export_chrome_json();
        shutdown();
        let s = validate_chrome_trace(&json).expect("repaired trace validates");
        assert_eq!(s.begins, s.ends);
        assert!(s.names.contains("unclosed"));
    }

    #[test]
    fn end_inherits_open_span_name() {
        let _g = locked();
        init(64);
        begin("guest task", PID_GUEST, 2);
        end(PID_GUEST, 2);
        let json = export_chrome_json();
        shutdown();
        // Both the B and the repaired E carry the span name.
        assert_eq!(json.matches("guest task").count(), 2);
    }
}
