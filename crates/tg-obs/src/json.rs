//! Hand-rolled JSON support.
//!
//! The workspace's `serde` is an offline no-op shim, so the emitters in
//! this crate write JSON by hand; this module supplies the string escaping
//! they need plus a small recursive-descent parser that tests use to prove
//! the emitted documents are well-formed.

use std::collections::BTreeMap;

/// Escape a string for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object. Key order is not preserved (sorted map).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The field map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing garbage is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let b = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>().map(JsonValue::Num).map_err(|_| format!("bad number `{s}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        let ch = char::from_u32(cp).ok_or("surrogate \\u escape")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(format!("bad escape \\{} at byte {pos}", esc as char)),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = parse(
            r#"{"traceEvents": [{"ph": "B", "ts": 12, "ok": true},
               {"ph": "E", "ts": 13.5, "x": null}], "n": -2}"#,
        )
        .unwrap();
        let evs = doc.get("traceEvents").and_then(JsonValue::as_array).unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].get("ph").and_then(JsonValue::as_str), Some("B"));
        assert_eq!(evs[0].get("ts").and_then(JsonValue::as_u64), Some(12));
        assert_eq!(evs[1].get("ts").and_then(JsonValue::as_f64), Some(13.5));
        assert_eq!(doc.get("n").and_then(JsonValue::as_f64), Some(-2.0));
    }

    #[test]
    fn escape_round_trip() {
        let raw = "a\"b\\c\nd\te\u{1}f";
        let parsed = parse(&format!("\"{}\"", escape(raw))).unwrap();
        assert_eq!(parsed.as_str(), Some(raw));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
