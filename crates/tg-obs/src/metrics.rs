//! A flat registry of named, typed metrics.
//!
//! Names are dot-prefixed by subsystem (`vm.instrs`, `dispatch.chain_hits`,
//! `analysis.pairs_checked`, `stream.epochs`, `filter.sites_pruned`, ...).
//! Insertion order is preserved so rendered output is stable, and `set` on
//! an existing name overwrites in place. The registry is a *snapshot*
//! container: subsystems publish their final counters into it at report
//! time; nothing in a hot loop ever touches a `Registry`.

use crate::json::escape;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A single metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned counter or gauge.
    U64(u64),
    /// A floating-point gauge (durations in seconds, ratios).
    F64(f64),
    /// A short descriptive string (engine names, modes).
    Str(String),
    /// An on/off toggle (escape-hatch states).
    Bool(bool),
}

impl Value {
    fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::F64(v) if v.is_finite() => format!("{v}"),
            Value::F64(_) => "null".into(),
            Value::Str(s) => format!("\"{}\"", escape(s)),
            Value::Bool(b) => b.to_string(),
        }
    }
}

/// An insertion-ordered collection of named metrics.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    entries: Vec<(String, Value)>,
    index: HashMap<String, usize>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Insert or overwrite a metric.
    pub fn set(&mut self, name: &str, value: Value) {
        match self.index.get(name) {
            Some(&i) => self.entries[i].1 = value,
            None => {
                self.index.insert(name.to_string(), self.entries.len());
                self.entries.push((name.to_string(), value));
            }
        }
    }

    /// Insert or overwrite an unsigned counter.
    pub fn set_u64(&mut self, name: &str, v: u64) {
        self.set(name, Value::U64(v));
    }

    /// Insert or overwrite a floating-point gauge.
    pub fn set_f64(&mut self, name: &str, v: f64) {
        self.set(name, Value::F64(v));
    }

    /// Insert or overwrite a string metric.
    pub fn set_str(&mut self, name: &str, v: &str) {
        self.set(name, Value::Str(v.to_string()));
    }

    /// Insert or overwrite a boolean toggle.
    pub fn set_bool(&mut self, name: &str, v: bool) {
        self.set(name, Value::Bool(v));
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.index.get(name).map(|&i| &self.entries[i].1)
    }

    /// Look up an unsigned counter, or `0` when absent or of another type.
    pub fn u64(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(Value::U64(v)) => *v,
            _ => 0,
        }
    }

    /// Look up a floating-point gauge, or `0.0` when absent.
    pub fn f64(&self, name: &str) -> f64 {
        match self.get(name) {
            Some(Value::F64(v)) => *v,
            _ => 0.0,
        }
    }

    /// Look up a string metric, or `""` when absent.
    pub fn str(&self, name: &str) -> &str {
        match self.get(name) {
            Some(Value::Str(s)) => s,
            _ => "",
        }
    }

    /// Look up a boolean toggle, or `false` when absent.
    pub fn bool(&self, name: &str) -> bool {
        matches!(self.get(name), Some(Value::Bool(true)))
    }

    /// Iterate metrics in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of metrics in the registry.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metric has been published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render the registry as a JSON object, one `"name": value` pair per
    /// line, in insertion order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            let _ = writeln!(out, "  \"{}\": {}{}", escape(name), value.to_json(), comma);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};

    #[test]
    fn set_get_overwrite_preserves_order() {
        let mut r = Registry::new();
        r.set_u64("vm.instrs", 10);
        r.set_str("analysis.engine", "sweep");
        r.set_u64("vm.instrs", 42);
        r.set_bool("engine.chaining", true);
        r.set_f64("analysis.secs", 0.5);
        assert_eq!(r.u64("vm.instrs"), 42);
        assert_eq!(r.str("analysis.engine"), "sweep");
        assert!(r.bool("engine.chaining"));
        assert_eq!(r.f64("analysis.secs"), 0.5);
        assert_eq!(r.u64("missing"), 0);
        let names: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["vm.instrs", "analysis.engine", "engine.chaining", "analysis.secs"]);
    }

    #[test]
    fn json_round_trips_through_parser() {
        let mut r = Registry::new();
        r.set_u64("a.count", 7);
        r.set_str("a.name", "x \"quoted\" \\ and\nnewline");
        r.set_bool("a.flag", false);
        r.set_f64("a.secs", 1.25);
        let doc = parse(&r.to_json()).expect("registry JSON must parse");
        let obj = doc.as_object().expect("top level is an object");
        assert_eq!(obj.len(), 4);
        assert_eq!(doc.get("a.count").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(
            doc.get("a.name").and_then(JsonValue::as_str),
            Some("x \"quoted\" \\ and\nnewline")
        );
        assert_eq!(doc.get("a.flag"), Some(&JsonValue::Bool(false)));
        assert_eq!(doc.get("a.secs").and_then(JsonValue::as_f64), Some(1.25));
    }

    #[test]
    fn non_finite_floats_emit_null() {
        let mut r = Registry::new();
        r.set_f64("bad", f64::NAN);
        assert!(parse(&r.to_json()).is_ok());
        assert!(r.to_json().contains("null"));
    }
}
