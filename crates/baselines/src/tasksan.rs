//! TaskSanitizer analog (Matar & Unat, Euro-Par'18): a segment-graph
//! determinacy-race detector built on compile-time instrumentation.
//!
//! Architecturally close to Taskgrind (it introduced the segment-graph
//! formalism the paper builds on), but with the limitations the paper's
//! Table I attributes to it:
//!
//! * **compile-time instrumentation**: accesses arrive only from
//!   `__tsan_*` stubs in user code — anything in uninstrumented
//!   libraries is invisible;
//! * **feature gaps** ("ncs" rows): the harness gates programs on
//!   [`SUPPORTED_FEATURES`] first — its Clang 8 front end rejects
//!   taskloop, threadprivate, mergeable, and OpenMP-4.5/5.0 dependence
//!   types;
//! * **no taskgroup edges** (FP on DRB107);
//! * **undeferred/included tasks not modelled** (FP on DRB122): the
//!   builder strips the inline flags, so runtime-serialized tasks look
//!   concurrent;
//! * **no stack/TLS suppression and no allocator replacement** — the
//!   heavyweight-DBI pitfalls of §IV do not apply to it wholesale, but
//!   stack-reuse FPs (TMB 1003/1005) do.

use crate::BaselineRun;
use grindcore::creq;
use grindcore::tool::{FnReplacement, Tool};
use grindcore::{ExecMode, Tid, Vm, VmConfig, VmCore};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;
use taskgrind::analysis::{self, SuppressOptions};
use taskgrind::graph::{DepKind, GraphBuilder, ThreadMeta};
use taskgrind::reach::Reachability;
use tga::module::Module;

/// Program features TaskSanitizer's Clang-8-era toolchain accepts.
/// Anything else is "ncs" (no compiler support) in Table I.
pub const SUPPORTED_FEATURES: &[&str] = &[
    "task",
    "taskwait",
    "taskgroup",
    "barrier",
    "single",
    "parallel",
    "critical",
    "master",
    "dep-in",
    "dep-out",
    "dep-inout",
];

/// Does TaskSanitizer's front end accept a program with these features?
pub fn supports(features: &[&str]) -> bool {
    features.iter().all(|f| SUPPORTED_FEATURES.contains(f))
}

const R_READ8: u32 = 10;
const R_WRITE8: u32 = 11;
const R_READ1: u32 = 12;
const R_WRITE1: u32 = 13;
const R_MALLOC: u32 = 20;
const R_CALLOC: u32 = 21;
const R_FREE: u32 = 22;

struct TsanState {
    builder: GraphBuilder,
}

#[derive(Clone)]
pub struct TaskSanTool {
    state: Rc<RefCell<TsanState>>,
}

impl TaskSanTool {
    pub fn new() -> TaskSanTool {
        let mut builder = GraphBuilder::new();
        // undeferred/included semantics unsupported: inline flags dropped
        builder.set_user_deferrable(true);
        // dependences matched by address only (no sibling scoping) —
        // the Table I FN on non-sibling dependence tests
        builder.set_global_dep_scope(true);
        TaskSanTool { state: Rc::new(RefCell::new(TsanState { builder })) }
    }
}

impl Default for TaskSanTool {
    fn default() -> Self {
        Self::new()
    }
}

fn thread_meta(core: &VmCore, tid: Tid) -> ThreadMeta {
    let t = &core.threads[tid];
    ThreadMeta {
        tid,
        sp: t.reg(tga::reg::SP),
        stack_low: t.stack_low,
        stack_high: t.stack_high,
        tls_base: t.tls_base,
        tls_size: t.tls_size,
        tls_gen: t.tls_gen,
    }
}

impl Tool for TaskSanTool {
    fn name(&self) -> &'static str {
        "tasksanitizer"
    }

    fn replacements(&self) -> Vec<FnReplacement> {
        vec![
            FnReplacement { pattern: "__tsan_read8".into(), id: R_READ8 },
            FnReplacement { pattern: "__tsan_write8".into(), id: R_WRITE8 },
            FnReplacement { pattern: "__tsan_read1".into(), id: R_READ1 },
            FnReplacement { pattern: "__tsan_write1".into(), id: R_WRITE1 },
            // the TSan runtime ships its own allocator: no recycling
            FnReplacement { pattern: "malloc".into(), id: R_MALLOC },
            FnReplacement { pattern: "calloc".into(), id: R_CALLOC },
            FnReplacement { pattern: "free".into(), id: R_FREE },
        ]
    }

    fn replaced_call(&mut self, core: &mut VmCore, tid: Tid, id: u32, args: [u64; 8]) -> u64 {
        match id {
            R_MALLOC => return core.alloc_raw(args[0].max(1)),
            R_CALLOC => return core.alloc_raw(args[0].wrapping_mul(args[1]).max(1)),
            R_FREE => return 0,
            _ => {}
        }
        let meta = thread_meta(core, tid);
        let write = matches!(id, R_WRITE8 | R_WRITE1);
        let size = if matches!(id, R_READ1 | R_WRITE1) { 1 } else { 8 };
        self.state.borrow_mut().builder.record_access(&meta, args[0], size, write);
        0
    }

    fn client_request(&mut self, core: &mut VmCore, tid: Tid, code: u64, args: [u64; 5]) -> u64 {
        let meta = thread_meta(core, tid);
        let mut st = self.state.borrow_mut();
        let b = &mut st.builder;
        match code {
            creq::PARALLEL_BEGIN => b.parallel_begin(&meta, args[0]),
            creq::PARALLEL_END => {
                b.parallel_end(&meta, args[0]);
                0
            }
            creq::IMPLICIT_TASK_BEGIN => {
                b.implicit_task_begin(&meta, args[0], args[1]);
                0
            }
            creq::IMPLICIT_TASK_END => {
                b.implicit_task_end(&meta, args[0], args[1]);
                0
            }
            creq::TASK_CREATE => b.task_create(&meta, args[0], args[1]),
            creq::TASK_DEP => {
                b.task_dep(args[0], args[1], args[2], DepKind::from_u64(args[3]));
                0
            }
            creq::TASK_SPAWN => {
                b.task_spawn(&meta, args[0]);
                0
            }
            creq::TASK_BEGIN => {
                b.task_begin(&meta, args[0]);
                0
            }
            creq::TASK_END => {
                b.task_end(&meta, args[0]);
                0
            }
            creq::TASKWAIT => {
                b.taskwait(&meta);
                0
            }
            // taskgroup is NOT understood: no join edges (FP on DRB107)
            creq::TASKGROUP_BEGIN | creq::TASKGROUP_END => 0,
            creq::BARRIER => {
                b.barrier(&meta, args[0]);
                0
            }
            creq::CRITICAL_ENTER => {
                b.critical_enter(&meta, args[0]);
                0
            }
            creq::CRITICAL_EXIT => {
                b.critical_exit(&meta, args[0]);
                0
            }
            _ => 0,
        }
    }

    fn tool_bytes(&self) -> u64 {
        self.state.borrow().builder.segments.iter().map(|s| s.bytes()).sum()
    }
}

/// Run a TSan-instrumented module under the TaskSanitizer analysis.
pub fn run_tasksan(module: &Module, args: &[&str], vm_cfg: &VmConfig) -> BaselineRun {
    let tool = TaskSanTool::new();
    let state = tool.state.clone();
    let mut vm = Vm::new(module.clone(), Box::new(tool), vm_cfg.clone());
    let t0 = Instant::now();
    let run = vm.run(ExecMode::Fast, args);
    let tool_bytes = run.metrics.tool_bytes;
    drop(vm);

    let st = Rc::try_unwrap(state).ok().expect("sole owner").into_inner();
    let graph = st.builder.finalize();
    let reach = Reachability::compute(&graph);
    // no stack/TLS suppression, no mutexinoutset exclusion
    let opts = SuppressOptions {
        tls: false,
        stack: false,
        locks: true,
        mutexinoutset: false,
        static_proof: false,
    };
    let out = analysis::run(&graph, &reach, &opts);
    let time_secs = t0.elapsed().as_secs_f64();

    // one report per distinct task-pair
    let mut keys: Vec<(u32, u32)> = out
        .candidates
        .iter()
        .map(|c| {
            let t1 = graph.segments[c.seg1 as usize].task.unwrap_or(u32::MAX);
            let t2 = graph.segments[c.seg2 as usize].task.unwrap_or(u32::MAX);
            if t1 <= t2 {
                (t1, t2)
            } else {
                (t2, t1)
            }
        })
        .collect();
    keys.sort_unstable();
    keys.dedup();
    let reports: Vec<String> = keys
        .iter()
        .map(|(a, b)| format!("determinacy race between task {a} and task {b}"))
        .collect();
    BaselineRun { run, n_reports: reports.len(), reports, segv: false, time_secs, tool_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_rt::build_program_tsan;
    use minicc::SourceFile;

    fn run(src: &str, nthreads: u64) -> BaselineRun {
        let m = build_program_tsan(&[SourceFile::new("t.c", src)]).unwrap();
        run_tasksan(&m, &[], &VmConfig { nthreads, ..Default::default() })
    }

    #[test]
    fn feature_gate() {
        assert!(supports(&["task", "taskwait", "parallel"]));
        assert!(!supports(&["task", "taskloop"]));
        assert!(!supports(&["threadprivate"]));
        assert!(!supports(&["dep-mutexinoutset"]));
        assert!(!supports(&["mergeable"]));
    }

    #[test]
    fn detects_race_even_single_threaded() {
        // Segment-based: unlike Archer, serialization does not hide the
        // race (it ignores the included flag entirely).
        let src = r#"
int g;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task
            g = 1;
            #pragma omp task
            g = 2;
        }
    }
    return 0;
}
"#;
        for nt in [1, 2] {
            let r = run(src, nt);
            assert!(r.run.ok(), "{:?}", r.run.error);
            assert!(r.found_race(), "nt={nt}");
        }
    }

    #[test]
    fn taskgroup_not_understood_causes_fp() {
        // DRB107 pattern: taskgroup makes this safe, but TaskSanitizer
        // has no taskgroup edges.
        let src = r#"
int g;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp taskgroup
            {
                #pragma omp task
                g = 1;
            }
            g = 2;
        }
    }
    return 0;
}
"#;
        let r = run(src, 2);
        assert!(r.run.ok(), "{:?}", r.run.error);
        assert!(r.found_race(), "missing taskgroup support ⇒ false positive");
    }

    #[test]
    fn undeferred_tasks_look_concurrent() {
        // DRB122 pattern: if(0) forces undeferred execution (safe), but
        // TaskSanitizer ignores the flag ⇒ FP.
        let src = r#"
int g;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task if(0)
            g = 1;
            g = 2;
        }
    }
    return 0;
}
"#;
        let r = run(src, 2);
        assert!(r.found_race(), "undeferred flag ignored ⇒ false positive");
    }

    #[test]
    fn dependences_respected() {
        let src = r#"
int g;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(out: g)
            g = 1;
            #pragma omp task depend(in: g)
            { int y = g; }
        }
    }
    return 0;
}
"#;
        let r = run(src, 2);
        assert!(r.run.ok(), "{:?}", r.run.error);
        assert_eq!(r.n_reports, 0, "{:?}", r.reports);
    }
}
