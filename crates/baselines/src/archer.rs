//! Archer analog: ThreadSanitizer-style vector-clock happens-before
//! race detection over compile-time instrumentation.
//!
//! Archer (Atzeni et al., IPDPS'16) extends TSan with OpenMP awareness:
//! the compiler inserts `__tsan_read/write` calls into *user* code, and
//! an OMPT hook translates runtime events into TSan synchronization.
//! Two architectural properties follow, both reproduced here:
//!
//! * it is **thread-centric** — each VM thread carries one clock, so two
//!   tasks serialized onto the same thread are implicitly ordered. This
//!   is the source of the paper's Archer false negatives, including the
//!   "0 reports" single-threaded LULESH rows of Table II;
//! * it only sees **instrumented code** — the runtime (compiled without
//!   `-fsanitize=thread`) is invisible, so races through uninstrumented
//!   libraries are missed.
//!
//! Accesses arrive through function replacement of the `__tsan_*` stubs
//! that `minicc` emits in TSan mode; the program runs in Fast mode (no
//! DBI), giving Archer its characteristic ~10x (not ~100x) overhead.

use crate::BaselineRun;
use grindcore::creq;
use grindcore::tool::{FnReplacement, Tool};
use grindcore::{ExecMode, Tid, Vm, VmConfig, VmCore};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;
use std::time::Instant;
use tga::module::Module;

const R_READ8: u32 = 10;
const R_WRITE8: u32 = 11;
const R_READ1: u32 = 12;
const R_WRITE1: u32 = 13;
const R_MALLOC: u32 = 20;
const R_CALLOC: u32 = 21;
const R_FREE: u32 = 22;

/// A vector clock indexed by VM thread id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, t: Tid) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn set(&mut self, t: Tid, v: u64) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    fn tick(&mut self, t: Tid) {
        let v = self.get(t) + 1;
        self.set(t, v);
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Does this clock know about `(tid, at)`?
    fn covers(&self, t: Tid, at: u64) -> bool {
        self.get(t) >= at
    }
}

#[derive(Clone, Copy, Debug)]
struct Epoch {
    tid: Tid,
    clock: u64,
    /// User-code call site, for reports.
    site: u64,
}

#[derive(Default)]
struct Shadow {
    write: Option<Epoch>,
    reads: Vec<Epoch>,
}

struct TaskInfo {
    /// Creator's clock at spawn (joined at task begin).
    spawn_vc: Option<VClock>,
    /// Clock at completion (joined at taskwait/taskgroup).
    end_vc: Option<VClock>,
    deps: Vec<(u64, u64)>, // (addr, kind)
}

#[derive(Default)]
struct ThreadSt {
    vc: VClock,
    /// Stack of executing tasks, each with its created children.
    ctx: Vec<(u64, Vec<u64>)>,
    barrier_gen: u64,
}

struct ArcherState {
    threads: Vec<ThreadSt>,
    tasks: HashMap<u64, TaskInfo>,
    next_task: u64,
    /// One sync object per dependence address (global scope — Archer's
    /// OMPT bridge does not scope deps to siblings, which contributes to
    /// its DRB173 behaviour).
    dep_vc: HashMap<u64, VClock>,
    lock_vc: HashMap<u64, VClock>,
    region_vc: VClock,
    region_end_vc: VClock,
    /// Barrier: accumulated arrivals + released generation.
    barrier_acc: VClock,
    barrier_release: VClock,
    barrier_gen: u64,
    barrier_arrived: u64,
    team: u64,
    /// All tasks created since the last taskgroup-begin markers.
    group_stack: Vec<usize>,
    all_tasks: Vec<u64>,
    shadow: HashMap<u64, Shadow>,
    /// Distinct (site, site) report pairs.
    reports: BTreeSet<(u64, u64)>,
}

impl ArcherState {
    fn new() -> ArcherState {
        ArcherState {
            threads: Vec::new(),
            tasks: HashMap::new(),
            next_task: 1,
            dep_vc: HashMap::new(),
            lock_vc: HashMap::new(),
            region_vc: VClock::default(),
            region_end_vc: VClock::default(),
            barrier_acc: VClock::default(),
            barrier_release: VClock::default(),
            barrier_gen: 0,
            barrier_arrived: 0,
            team: 1,
            group_stack: Vec::new(),
            all_tasks: Vec::new(),
            shadow: HashMap::new(),
            reports: BTreeSet::new(),
        }
    }

    fn thread(&mut self, t: Tid) -> &mut ThreadSt {
        if self.threads.len() <= t {
            self.threads.resize_with(t + 1, ThreadSt::default);
        }
        // every thread's own component starts at 1, so its epochs are
        // never vacuously covered by other threads' zero entries
        if self.threads[t].vc.get(t) == 0 {
            self.threads[t].vc.set(t, 1);
        }
        &mut self.threads[t]
    }

    /// Lazy barrier release: threads observe the release clock at their
    /// next instrumented action.
    fn sync_barrier(&mut self, t: Tid) {
        let gen = self.barrier_gen;
        let th = self.thread(t);
        if th.barrier_gen < gen {
            th.barrier_gen = gen;
            let rel = self.barrier_release.clone();
            self.thread(t).vc.join(&rel);
        }
    }

    fn access(&mut self, tid: Tid, addr: u64, write: bool, site: u64) {
        self.sync_barrier(tid);
        let now = Epoch { tid, clock: self.thread(tid).vc.get(tid), site };
        let vc = self.thread(tid).vc.clone();
        let granule = addr & !7;
        let cell = self.shadow.entry(granule).or_default();
        if write {
            if let Some(w) = cell.write {
                if w.tid != tid && !vc.covers(w.tid, w.clock) {
                    self.reports.insert(order(w.site, site));
                }
            }
            let cell = self.shadow.get_mut(&granule).unwrap();
            for r in std::mem::take(&mut cell.reads) {
                if r.tid != tid && !vc.covers(r.tid, r.clock) {
                    self.reports.insert(order(r.site, site));
                }
            }
            let cell = self.shadow.get_mut(&granule).unwrap();
            cell.write = Some(now);
            cell.reads.clear();
        } else {
            if let Some(w) = cell.write {
                if w.tid != tid && !vc.covers(w.tid, w.clock) {
                    self.reports.insert(order(w.site, site));
                }
            }
            let cell = self.shadow.get_mut(&granule).unwrap();
            cell.reads.retain(|r| r.tid != tid);
            if cell.reads.len() < 16 {
                cell.reads.push(now);
            }
        }
    }

    fn bytes(&self) -> u64 {
        self.shadow.len() as u64 * 64
            + self.tasks.len() as u64 * 96
            + self.threads.len() as u64 * 64
    }
}

fn order(a: u64, b: u64) -> (u64, u64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The Archer tool plugin.
#[derive(Clone)]
pub struct ArcherTool {
    state: Rc<RefCell<ArcherState>>,
}

impl ArcherTool {
    pub fn new() -> ArcherTool {
        ArcherTool { state: Rc::new(RefCell::new(ArcherState::new())) }
    }
}

impl Default for ArcherTool {
    fn default() -> Self {
        Self::new()
    }
}

fn call_site(core: &VmCore, tid: Tid) -> u64 {
    // stack_trace[0] is the replaced stub itself; [1] is the user call.
    core.stack_trace(tid).get(1).copied().unwrap_or(0)
}

impl Tool for ArcherTool {
    fn name(&self) -> &'static str {
        "archer"
    }

    fn replacements(&self) -> Vec<FnReplacement> {
        vec![
            FnReplacement { pattern: "__tsan_read8".into(), id: R_READ8 },
            FnReplacement { pattern: "__tsan_write8".into(), id: R_WRITE8 },
            FnReplacement { pattern: "__tsan_read1".into(), id: R_READ1 },
            FnReplacement { pattern: "__tsan_write1".into(), id: R_WRITE1 },
            // the TSan runtime ships its own allocator: no recycling
            FnReplacement { pattern: "malloc".into(), id: R_MALLOC },
            FnReplacement { pattern: "calloc".into(), id: R_CALLOC },
            FnReplacement { pattern: "free".into(), id: R_FREE },
        ]
    }

    fn replaced_call(&mut self, core: &mut VmCore, tid: Tid, id: u32, args: [u64; 8]) -> u64 {
        match id {
            R_MALLOC => return core.alloc_raw(args[0].max(1)),
            R_CALLOC => return core.alloc_raw(args[0].wrapping_mul(args[1]).max(1)),
            R_FREE => return 0,
            _ => {}
        }
        let site = call_site(core, tid);
        let write = matches!(id, R_WRITE8 | R_WRITE1);
        self.state.borrow_mut().access(tid, args[0], write, site);
        0
    }

    fn client_request(&mut self, _core: &mut VmCore, tid: Tid, code: u64, args: [u64; 5]) -> u64 {
        let mut st = self.state.borrow_mut();
        st.sync_barrier(tid);
        match code {
            creq::PARALLEL_BEGIN => {
                st.team = args[0].max(1);
                // release: publish the clock, then advance past it
                let vc = st.thread(tid).vc.clone();
                st.region_vc = vc;
                st.thread(tid).vc.tick(tid);
                st.region_end_vc = VClock::default();
                0
            }
            creq::IMPLICIT_TASK_BEGIN => {
                let rvc = st.region_vc.clone();
                st.thread(tid).vc.join(&rvc);
                st.thread(tid).ctx.push((0, Vec::new()));
                0
            }
            creq::IMPLICIT_TASK_END => {
                let vc = st.thread(tid).vc.clone();
                st.region_end_vc.join(&vc);
                st.thread(tid).vc.tick(tid);
                st.thread(tid).ctx.pop();
                0
            }
            creq::PARALLEL_END => {
                let evc = st.region_end_vc.clone();
                st.thread(tid).vc.join(&evc);
                0
            }
            creq::TASK_CREATE => {
                let id = st.next_task;
                st.next_task += 1;
                st.tasks.insert(id, TaskInfo { spawn_vc: None, end_vc: None, deps: Vec::new() });
                st.all_tasks.push(id);
                if let Some((_, children)) = st.thread(tid).ctx.last_mut() {
                    children.push(id);
                }
                id
            }
            creq::TASK_DEP => {
                if let Some(t) = st.tasks.get_mut(&args[0]) {
                    t.deps.push((args[1], args[3]));
                }
                0
            }
            creq::TASK_SPAWN => {
                // release: publish, then tick, so the creator's later
                // accesses are not covered by the child's joined clock
                let vc = st.thread(tid).vc.clone();
                if let Some(t) = st.tasks.get_mut(&args[0]) {
                    t.spawn_vc = Some(vc);
                }
                st.thread(tid).vc.tick(tid);
                0
            }
            creq::TASK_BEGIN => {
                let (spawn, deps) = match st.tasks.get(&args[0]) {
                    Some(t) => (t.spawn_vc.clone(), t.deps.clone()),
                    None => (None, Vec::new()),
                };
                if let Some(vc) = spawn {
                    st.thread(tid).vc.join(&vc);
                }
                for (addr, _kind) in deps {
                    if let Some(vc) = st.dep_vc.get(&addr).cloned() {
                        st.thread(tid).vc.join(&vc);
                    }
                }
                st.thread(tid).ctx.push((args[0], Vec::new()));
                0
            }
            creq::TASK_END => {
                let vc = st.thread(tid).vc.clone();
                let deps = st.tasks.get(&args[0]).map(|t| t.deps.clone()).unwrap_or_default();
                for (addr, kind) in deps {
                    if kind != creq::dep_kind::IN {
                        st.dep_vc.entry(addr).or_default().join(&vc);
                    }
                }
                if let Some(t) = st.tasks.get_mut(&args[0]) {
                    t.end_vc = Some(vc);
                }
                st.thread(tid).ctx.pop();
                st.thread(tid).vc.tick(tid);
                0
            }
            creq::TASKWAIT => {
                let children =
                    st.thread(tid).ctx.last().map(|(_, c)| c.clone()).unwrap_or_default();
                for ch in children {
                    if let Some(vc) = st.tasks.get(&ch).and_then(|t| t.end_vc.clone()) {
                        st.thread(tid).vc.join(&vc);
                    }
                }
                0
            }
            creq::TASKGROUP_BEGIN => {
                let mark = st.all_tasks.len();
                st.group_stack.push(mark);
                0
            }
            creq::TASKGROUP_END => {
                let mark = st.group_stack.pop().unwrap_or(0);
                let members: Vec<u64> = st.all_tasks[mark..].to_vec();
                for m in members {
                    if let Some(vc) = st.tasks.get(&m).and_then(|t| t.end_vc.clone()) {
                        st.thread(tid).vc.join(&vc);
                    }
                }
                0
            }
            creq::BARRIER => {
                let vc = st.thread(tid).vc.clone();
                st.barrier_acc.join(&vc);
                st.thread(tid).vc.tick(tid);
                st.barrier_arrived += 1;
                if st.barrier_arrived >= st.team {
                    st.barrier_arrived = 0;
                    st.barrier_release = std::mem::take(&mut st.barrier_acc);
                    st.barrier_gen += 1;
                }
                0
            }
            creq::CRITICAL_ENTER => {
                if let Some(vc) = st.lock_vc.get(&args[0]).cloned() {
                    st.thread(tid).vc.join(&vc);
                }
                0
            }
            creq::CRITICAL_EXIT => {
                let vc = st.thread(tid).vc.clone();
                st.lock_vc.entry(args[0]).or_default().join(&vc);
                st.thread(tid).vc.tick(tid);
                0
            }
            _ => 0,
        }
    }

    fn thread_created(&mut self, _core: &mut VmCore, parent: Tid, child: Tid) {
        let mut st = self.state.borrow_mut();
        // release: publish, then tick
        let vc = st.thread(parent).vc.clone();
        st.thread(child).vc.join(&vc);
        st.thread(parent).vc.tick(parent);
    }

    fn tool_bytes(&self) -> u64 {
        self.state.borrow().bytes()
    }
}

/// Run a TSan-instrumented module under the Archer analysis.
pub fn run_archer(module: &Module, args: &[&str], vm_cfg: &VmConfig) -> BaselineRun {
    let tool = ArcherTool::new();
    let state = tool.state.clone();
    let mut vm = Vm::new(module.clone(), Box::new(tool), vm_cfg.clone());
    let t0 = Instant::now();
    let run = vm.run(ExecMode::Fast, args);
    let time_secs = t0.elapsed().as_secs_f64();
    let tool_bytes = run.metrics.tool_bytes;
    drop(vm);
    let st = state.borrow();
    let reports: Vec<String> = st
        .reports
        .iter()
        .map(|(a, b)| format!("WARNING: data race between {:#x} and {:#x}", a, b))
        .collect();
    BaselineRun { run, n_reports: reports.len(), reports, segv: false, time_secs, tool_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_rt::build_program_tsan;
    use minicc::SourceFile;

    fn run(src: &str, nthreads: u64) -> BaselineRun {
        let m = build_program_tsan(&[SourceFile::new("t.c", src)]).unwrap();
        run_archer(&m, &[], &VmConfig { nthreads, ..Default::default() })
    }

    const RACY: &str = r#"
int main(void) {
    int *x = (int*) malloc(8);
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task shared(x)
            x[0] = 1;
            #pragma omp task shared(x)
            x[0] = 2;
        }
    }
    return 0;
}
"#;

    #[test]
    fn vclock_ops() {
        let mut a = VClock::default();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VClock::default();
        b.set(1, 5);
        b.join(&a);
        assert_eq!(b.get(0), 3);
        assert_eq!(b.get(1), 5);
        assert_eq!(b.get(2), 1);
        assert!(b.covers(0, 3));
        assert!(!b.covers(0, 4));
        b.tick(1);
        assert_eq!(b.get(1), 6);
    }

    #[test]
    fn detects_race_multithreaded() {
        // Whether Archer sees the race depends on which threads execute
        // the tasks (the paper's own cells read "FN/TP"); explore a few
        // schedules and require at least one detection.
        let m = build_program_tsan(&[SourceFile::new("t.c", RACY)]).unwrap();
        let mut found = false;
        for seed in 0..8 {
            let cfg = VmConfig {
                nthreads: 2,
                seed,
                sched: grindcore::SchedPolicy::Random,
                quantum: 16,
                ..Default::default()
            };
            let r = run_archer(&m, &[], &cfg);
            assert!(r.run.ok(), "{:?}", r.run.error);
            found |= r.found_race();
            if found {
                break;
            }
        }
        assert!(found, "Archer sees the race under at least one schedule");
    }

    #[test]
    fn thread_centric_fn_single_threaded() {
        // The paper's key Archer weakness: serialized tasks on one
        // thread are implicitly ordered by the thread clock.
        let r = run(RACY, 1);
        assert!(r.run.ok(), "{:?}", r.run.error);
        assert_eq!(r.n_reports, 0, "Archer never reports single-threaded (Table II)");
    }

    #[test]
    fn dependences_are_synchronization() {
        let src = r#"
int main(void) {
    int x = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(out: x) shared(x)
            x = 1;
            #pragma omp task depend(inout: x) shared(x)
            x = x + 1;
        }
    }
    return x;
}
"#;
        let r = run(src, 2);
        assert!(r.run.ok(), "{:?}", r.run.error);
        assert_eq!(r.n_reports, 0, "{:?}", r.reports);
    }

    #[test]
    fn taskwait_is_synchronization() {
        let src = r#"
int main(void) {
    int x = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task shared(x)
            x = 1;
            #pragma omp taskwait
            x = x + 1;
        }
    }
    return x;
}
"#;
        let r = run(src, 2);
        assert_eq!(r.n_reports, 0, "{:?}", r.reports);
    }

    #[test]
    fn critical_is_synchronization() {
        let src = r#"
int s;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp critical
        { s = s + 1; }
    }
    return s;
}
"#;
        let r = run(src, 4);
        assert_eq!(r.n_reports, 0, "{:?}", r.reports);
    }

    #[test]
    fn barrier_is_synchronization() {
        let src = r#"
int a[8];
int done;
int main(void) {
    #pragma omp parallel
    {
        int me = omp_get_thread_num();
        a[me] = me;
        #pragma omp barrier
        if (me == 0) { done = a[0] + a[1]; }
    }
    return done;
}
"#;
        let r = run(src, 2);
        assert!(r.run.ok(), "{:?}", r.run.error);
        assert_eq!(r.n_reports, 0, "{:?}", r.reports);
    }

    #[test]
    fn unsynchronized_parallel_writes_race() {
        let src = r#"
int s;
int main(void) {
    #pragma omp parallel
    { s = s + 1; }
    return s;
}
"#;
        let r = run(src, 4);
        assert!(r.found_race());
    }

    #[test]
    fn runtime_internals_invisible() {
        // a clean program: libomp's own queue traffic must not be seen
        // at all (it is not instrumented)
        let src = r#"
int main(void) {
    int a[16];
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp taskloop grainsize(4) shared(a)
            for (int i = 0; i < 16; i++) a[i] = i;
        }
    }
    return a[3];
}
"#;
        let r = run(src, 4);
        assert!(r.run.ok(), "{:?}", r.run.error);
        assert_eq!(r.n_reports, 0, "{:?}", r.reports);
    }
}
