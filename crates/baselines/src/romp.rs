//! ROMP analog (Gu & Mellor-Crummey, SC'18): dynamic race detection for
//! OpenMP programs over static *binary* instrumentation.
//!
//! Like Taskgrind, ROMP instruments binaries (it rewrites them with
//! Dyninst; we run the same full-coverage instrumentation through the
//! DBI substrate) and reasons about task concurrency. The paper's
//! Table I weaknesses reproduced here:
//!
//! * **OpenMP-only**: dependences are matched globally by address, not
//!   scoped to sibling tasks — creating phantom orderings for
//!   non-sibling dependences (FN on DRB173);
//! * **no mutexinoutset exclusion** (FP on DRB135);
//! * **undeferred/included tasks not modelled** (FP on DRB122);
//! * **poor error reports**: raw addresses only (Listing 5), no debug
//!   information;
//! * **fragile thread-local handling**: a threadprivate write from an
//!   explicit task crashes the instrumented run (`segv` on DRB127,
//!   "instrumented execution was incomplete due to a run-time error").

use crate::BaselineRun;
use grindcore::creq;
use grindcore::tool::{instrument_mem_accesses, pattern_matches, BlockMeta, Tool};
use grindcore::{AddrClass, ExecMode, Tid, Vm, VmConfig, VmCore};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;
use taskgrind::analysis::{self, SuppressOptions};
use taskgrind::graph::{DepKind, GraphBuilder, ThreadMeta};
use taskgrind::reach::Reachability;
use taskgrind::tool::default_ignore_list;
use tga::module::Module;
use vex_ir::IrBlock;

struct RompState {
    builder: GraphBuilder,
    ignore: Vec<String>,
    /// Set when the emulated instrumentation crashes.
    segv: bool,
}

#[derive(Clone)]
pub struct RompTool {
    state: Rc<RefCell<RompState>>,
}

impl RompTool {
    pub fn new() -> RompTool {
        let mut builder = GraphBuilder::new();
        builder.set_ignore_undeferred(true); // if(0) ordering not modelled
        builder.set_global_dep_scope(true); // deps matched by address only
        RompTool {
            state: Rc::new(RefCell::new(RompState {
                builder,
                ignore: default_ignore_list(),
                segv: false,
            })),
        }
    }
}

impl Default for RompTool {
    fn default() -> Self {
        Self::new()
    }
}

fn thread_meta(core: &VmCore, tid: Tid) -> ThreadMeta {
    let t = &core.threads[tid];
    ThreadMeta {
        tid,
        sp: t.reg(tga::reg::SP),
        stack_low: t.stack_low,
        stack_high: t.stack_high,
        tls_base: t.tls_base,
        tls_size: t.tls_size,
        tls_gen: t.tls_gen,
    }
}

impl Tool for RompTool {
    fn name(&self) -> &'static str {
        "romp"
    }

    fn instrument(&mut self, block: IrBlock, meta: &BlockMeta) -> IrBlock {
        let st = self.state.borrow();
        let skip = meta
            .fn_symbol
            .as_deref()
            .map(|n| st.ignore.iter().any(|p| pattern_matches(p, n)))
            .unwrap_or(false);
        drop(st);
        if skip {
            block
        } else {
            instrument_mem_accesses(block)
        }
    }

    fn mem_access(
        &mut self,
        core: &mut VmCore,
        tid: Tid,
        addr: u64,
        size: u64,
        write: bool,
        _pc: u64,
    ) {
        let mut st = self.state.borrow_mut();
        if st.segv {
            return; // crashed: the run is incomplete
        }
        // ROMP's shadow indexing mishandles OpenMP threadprivate storage
        // (plain C11 thread-locals are fine): a threadprivate write from
        // inside an explicit task corrupts its access history and kills
        // the run.
        if write
            && matches!(core.classify_addr(addr), AddrClass::Tls(t) if {
                let off = addr - core.threads[t].tls_base;
                core.module.symbols.iter().any(|s| {
                    s.kind == tga::module::SymKind::Tls
                        && s.name.starts_with("__omp_tp$")
                        && off >= s.addr
                        && off < s.addr + s.size
                })
            })
            && st.builder.current_task_explicit(tid)
        {
            st.segv = true;
            return;
        }
        let meta = thread_meta(core, tid);
        st.builder.record_access(&meta, addr, size, write);
    }

    fn client_request(&mut self, core: &mut VmCore, tid: Tid, code: u64, args: [u64; 5]) -> u64 {
        let meta = thread_meta(core, tid);
        let mut st = self.state.borrow_mut();
        if st.segv {
            // keep the runtime functional (ids must still be handed out)
            if code == creq::TASK_CREATE {
                return st.builder.task_create(&meta, args[0], args[1]);
            }
        }
        let b = &mut st.builder;
        match code {
            creq::PARALLEL_BEGIN => b.parallel_begin(&meta, args[0]),
            creq::PARALLEL_END => {
                b.parallel_end(&meta, args[0]);
                0
            }
            creq::IMPLICIT_TASK_BEGIN => {
                b.implicit_task_begin(&meta, args[0], args[1]);
                0
            }
            creq::IMPLICIT_TASK_END => {
                b.implicit_task_end(&meta, args[0], args[1]);
                0
            }
            creq::TASK_CREATE => b.task_create(&meta, args[0], args[1]),
            creq::TASK_DEP => {
                b.task_dep(args[0], args[1], args[2], DepKind::from_u64(args[3]));
                0
            }
            creq::TASK_SPAWN => {
                b.task_spawn(&meta, args[0]);
                0
            }
            creq::TASK_BEGIN => {
                b.task_begin(&meta, args[0]);
                0
            }
            creq::TASK_END => {
                b.task_end(&meta, args[0]);
                0
            }
            creq::TASKWAIT => {
                b.taskwait(&meta);
                0
            }
            creq::TASKGROUP_BEGIN => {
                b.taskgroup_begin(&meta);
                0
            }
            creq::TASKGROUP_END => {
                b.taskgroup_end(&meta);
                0
            }
            creq::BARRIER => {
                b.barrier(&meta, args[0]);
                0
            }
            creq::CRITICAL_ENTER => {
                b.critical_enter(&meta, args[0]);
                0
            }
            creq::CRITICAL_EXIT => {
                b.critical_exit(&meta, args[0]);
                0
            }
            _ => 0,
        }
    }

    fn tool_bytes(&self) -> u64 {
        // ROMP keeps a per-address access history rather than compact
        // interval trees: charge per recorded access, which is what made
        // it reach 75 GB on LULESH -s 64 in the paper.
        let st = self.state.borrow();
        st.builder.segments.iter().map(|s| (s.reads.accesses() + s.writes.accesses()) * 48).sum()
    }
}

/// Run a module under the ROMP analysis (DBI mode).
pub fn run_romp(module: &Module, args: &[&str], vm_cfg: &VmConfig) -> BaselineRun {
    let tool = RompTool::new();
    let state = tool.state.clone();
    let mut vm = Vm::new(module.clone(), Box::new(tool), vm_cfg.clone());
    let t0 = Instant::now();
    let run = vm.run(ExecMode::Dbi, args);
    let tool_bytes = run.metrics.tool_bytes;
    drop(vm);

    let st = Rc::try_unwrap(state).ok().expect("sole owner").into_inner();
    if st.segv {
        return BaselineRun {
            run,
            n_reports: 0,
            reports: vec!["Segmentation fault (instrumented execution incomplete)".into()],
            segv: true,
            time_secs: t0.elapsed().as_secs_f64(),
            tool_bytes,
        };
    }
    let graph = st.builder.finalize();
    let reach = Reachability::compute(&graph);
    let opts = SuppressOptions {
        tls: true,
        stack: true,
        locks: true,
        mutexinoutset: false,
        static_proof: false,
    };
    let out = analysis::run(&graph, &reach, &opts);
    let time_secs = t0.elapsed().as_secs_f64();

    // ROMP-style reports: raw addresses, no source info (Listing 5)
    let mut addrs: Vec<u64> = out.candidates.iter().map(|c| c.lo & !7).collect();
    addrs.sort_unstable();
    addrs.dedup();
    let reports: Vec<String> =
        addrs.iter().map(|a| format!("data race found:\n  addr = {a:#x}")).collect();
    BaselineRun { run, n_reports: reports.len(), reports, segv: false, time_secs, tool_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_rt::build_single;

    fn run(src: &str, nthreads: u64) -> BaselineRun {
        let m = build_single("t.c", src).unwrap();
        run_romp(&m, &[], &VmConfig { nthreads, ..Default::default() })
    }

    #[test]
    fn detects_simple_task_race() {
        let src = r#"
int g;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task
            g = 1;
            #pragma omp task
            g = 2;
        }
    }
    return 0;
}
"#;
        let r = run(src, 2);
        assert!(r.run.ok(), "{:?}", r.run.error);
        assert!(r.found_race());
        assert!(r.reports[0].contains("data race found"));
        assert!(!r.reports[0].contains("t.c"), "ROMP reports carry no source info");
    }

    #[test]
    fn non_sibling_deps_create_phantom_order() {
        // DRB173 pattern: deps on tasks of different parents do not
        // synchronize per spec, but ROMP matches them globally ⇒ FN.
        let src = r#"
int g;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task
            {
                #pragma omp task depend(out: g)
                g = 1;
                #pragma omp taskwait
            }
            #pragma omp task
            {
                #pragma omp task depend(out: g)
                g = 2;
                #pragma omp taskwait
            }
        }
    }
    return 0;
}
"#;
        let r = run(src, 2);
        assert!(r.run.ok(), "{:?}", r.run.error);
        assert_eq!(r.n_reports, 0, "global dep matching hides the race: {:?}", r.reports);
    }

    #[test]
    fn mutexinoutset_not_supported() {
        // DRB135 pattern: mutexinoutset makes this safe; ROMP reports it.
        let src = r#"
int g;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(mutexinoutset: g)
            g = g + 1;
            #pragma omp task depend(mutexinoutset: g)
            g = g + 2;
        }
    }
    return 0;
}
"#;
        let r = run(src, 2);
        assert!(r.found_race(), "no mutexinoutset exclusion ⇒ FP");
    }

    #[test]
    fn threadprivate_write_from_task_segvs() {
        // DRB127 pattern.
        let src = r#"
int tp;
#pragma omp threadprivate(tp)
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task
            tp = 1;
        }
    }
    return 0;
}
"#;
        let r = run(src, 2);
        assert!(r.segv, "threadprivate write from explicit task crashes ROMP");
    }

    #[test]
    fn clean_dependent_tasks_pass() {
        let src = r#"
int g;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(out: g)
            g = 1;
            #pragma omp task depend(inout: g)
            g = g + 1;
        }
    }
    return 0;
}
"#;
        let r = run(src, 2);
        assert!(r.run.ok(), "{:?}", r.run.error);
        assert_eq!(r.n_reports, 0, "{:?}", r.reports);
    }
}
