//! tg-baselines — the state-of-the-art tools Table I compares against,
//! rebuilt on the grindcore substrate.
//!
//! | tool | model | runs as | characteristic weaknesses reproduced |
//! |---|---|---|---|
//! | [`archer`] | vector-clock happens-before over compile-time (`__tsan_*`) instrumentation | Fast mode, TSan build | thread-centric: tasks serialized onto one thread are implicitly ordered (false negatives; 0 reports single-threaded); blind to non-instrumented (runtime) code |
//! | [`tasksan`] | segment-graph detector (TaskSanitizer) | Fast mode, TSan build | Clang-8-era feature gaps ("ncs"), no taskgroup edges, ignores undeferred/included flags, no stack/TLS suppression, no allocator replacement |
//! | [`romp`] | per-address access history over binary instrumentation | DBI mode | OpenMP-only, global (non-sibling-scoped) dependence matching, no mutexinoutset exclusion, address-only reports, crashes on threadprivate writes from explicit tasks |
//!
//! Each runner returns a [`BaselineRun`] with the same shape as
//! Taskgrind's result so the Table I/II harnesses treat all tools
//! uniformly.

pub mod archer;
pub mod romp;
pub mod tasksan;

use grindcore::RunResult;

/// Outcome of running one tool over one program.
#[derive(Clone, Debug)]
pub struct BaselineRun {
    pub run: RunResult,
    /// Distinct race reports.
    pub n_reports: usize,
    /// Rendered report lines (tool-specific verbosity).
    pub reports: Vec<String>,
    /// The instrumented run crashed tool-side (ROMP's `segv`).
    pub segv: bool,
    pub time_secs: f64,
    /// Host bytes of tool structures.
    pub tool_bytes: u64,
}

impl BaselineRun {
    pub fn found_race(&self) -> bool {
        self.n_reports > 0
    }
}

/// Tool verdict vs ground truth — the cells of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    TruePositive,
    TrueNegative,
    FalsePositive,
    FalseNegative,
    /// No compiler support (TaskSanitizer's Clang 8 limitations).
    Ncs,
    /// The instrumented execution crashed (ROMP).
    Segv,
    /// The instrumented execution deadlocked.
    Deadlock,
}

impl Verdict {
    /// Classify a tool outcome against the ground truth.
    pub fn classify(has_race: bool, reported: bool) -> Verdict {
        match (has_race, reported) {
            (true, true) => Verdict::TruePositive,
            (true, false) => Verdict::FalseNegative,
            (false, true) => Verdict::FalsePositive,
            (false, false) => Verdict::TrueNegative,
        }
    }

    /// Table I cell text.
    pub fn cell(&self) -> &'static str {
        match self {
            Verdict::TruePositive => "TP",
            Verdict::TrueNegative => "TN",
            Verdict::FalsePositive => "FP",
            Verdict::FalseNegative => "FN",
            Verdict::Ncs => "ncs",
            Verdict::Segv => "segv",
            Verdict::Deadlock => "deadlock",
        }
    }

    /// Is this a false negative (the paper's headline metric)?
    pub fn is_fn(&self) -> bool {
        matches!(self, Verdict::FalseNegative)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_classification() {
        assert_eq!(Verdict::classify(true, true), Verdict::TruePositive);
        assert_eq!(Verdict::classify(true, false), Verdict::FalseNegative);
        assert_eq!(Verdict::classify(false, true), Verdict::FalsePositive);
        assert_eq!(Verdict::classify(false, false), Verdict::TrueNegative);
        assert!(Verdict::FalseNegative.is_fn());
        assert!(!Verdict::TruePositive.is_fn());
        assert_eq!(Verdict::Ncs.cell(), "ncs");
        assert_eq!(Verdict::Segv.cell(), "segv");
    }
}
