//! IR sanity checking — the analog of VEX's `sanityCheckIRSB`.
//!
//! Tools rewrite blocks; a buggy tool that references an undefined
//! temporary or double-defines one would corrupt execution in ways that
//! are very hard to debug from inside the VM. `grindcore` therefore runs
//! [`check`] on every block a tool returns (in debug builds and on demand).

use crate::{Atom, IrBlock, Rhs, Stmt, Temp};

/// A structural defect found in an [`IrBlock`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SanityError {
    /// A temporary was referenced before any statement defined it.
    UseBeforeDef {
        /// Index of the offending statement in the block.
        stmt_index: usize,
        /// The temporary that was used.
        temp: Temp,
    },
    /// A temporary was defined more than once.
    Redefinition {
        /// Index of the second (offending) definition.
        stmt_index: usize,
        /// The temporary that was redefined.
        temp: Temp,
    },
    /// A temporary index is out of the declared `n_temps` range.
    TempOutOfRange {
        /// Index of the offending statement in the block.
        stmt_index: usize,
        /// The out-of-range temporary.
        temp: Temp,
    },
    /// The block's `next` atom references an undefined temporary.
    BadNext {
        /// The undefined temporary named by `next`.
        temp: Temp,
    },
    /// A dirty call's arity does not match its kind's expectations.
    BadDirtyArity {
        /// Index of the offending statement in the block.
        stmt_index: usize,
        /// Minimum argument count for the call kind.
        expected: usize,
        /// Argument count actually present.
        got: usize,
    },
}

impl std::fmt::Display for SanityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SanityError::UseBeforeDef { stmt_index, temp } => {
                write!(f, "stmt {stmt_index}: t{} used before definition", temp.0)
            }
            SanityError::Redefinition { stmt_index, temp } => {
                write!(f, "stmt {stmt_index}: t{} redefined", temp.0)
            }
            SanityError::TempOutOfRange { stmt_index, temp } => {
                write!(f, "stmt {stmt_index}: t{} out of range", temp.0)
            }
            SanityError::BadNext { temp } => {
                write!(f, "block next references undefined t{}", temp.0)
            }
            SanityError::BadDirtyArity { stmt_index, expected, got } => {
                write!(f, "stmt {stmt_index}: dirty call expects >= {expected} args, got {got}")
            }
        }
    }
}

impl std::error::Error for SanityError {}

struct Checker<'a> {
    block: &'a IrBlock,
    defined: Vec<bool>,
    errors: Vec<SanityError>,
}

impl<'a> Checker<'a> {
    fn use_atom(&mut self, idx: usize, a: &Atom) {
        if let Atom::Tmp(t) = a {
            if t.0 as usize >= self.defined.len() {
                self.errors.push(SanityError::TempOutOfRange { stmt_index: idx, temp: *t });
            } else if !self.defined[t.0 as usize] {
                self.errors.push(SanityError::UseBeforeDef { stmt_index: idx, temp: *t });
            }
        }
    }

    fn def_temp(&mut self, idx: usize, t: Temp) {
        if t.0 as usize >= self.defined.len() {
            self.errors.push(SanityError::TempOutOfRange { stmt_index: idx, temp: t });
            return;
        }
        if self.defined[t.0 as usize] {
            self.errors.push(SanityError::Redefinition { stmt_index: idx, temp: t });
        }
        self.defined[t.0 as usize] = true;
    }

    fn run(mut self) -> Vec<SanityError> {
        for (i, s) in self.block.stmts.iter().enumerate() {
            match s {
                Stmt::IMark { .. } => {}
                Stmt::WrTmp { dst, rhs } => {
                    match rhs {
                        Rhs::Atom(a) => self.use_atom(i, a),
                        Rhs::Get { .. } => {}
                        Rhs::Load { addr, .. } => self.use_atom(i, addr),
                        Rhs::Binop { lhs, rhs, .. } => {
                            self.use_atom(i, lhs);
                            self.use_atom(i, rhs);
                        }
                        Rhs::Unop { x, .. } => self.use_atom(i, x),
                        Rhs::Ite { cond, then, els } => {
                            self.use_atom(i, cond);
                            self.use_atom(i, then);
                            self.use_atom(i, els);
                        }
                    }
                    self.def_temp(i, *dst);
                }
                Stmt::Put { src, .. } => self.use_atom(i, src),
                Stmt::Store { addr, val, .. } => {
                    self.use_atom(i, addr);
                    self.use_atom(i, val);
                }
                Stmt::Cas { dst, addr, expected, new } => {
                    self.use_atom(i, addr);
                    self.use_atom(i, expected);
                    self.use_atom(i, new);
                    self.def_temp(i, *dst);
                }
                Stmt::AtomicAdd { dst, addr, val } => {
                    self.use_atom(i, addr);
                    self.use_atom(i, val);
                    self.def_temp(i, *dst);
                }
                Stmt::Dirty { call, args, dst } => {
                    let min_args = match call {
                        crate::DirtyCall::Syscall => 1,
                        crate::DirtyCall::ClientRequest => 1,
                        crate::DirtyCall::ToolMem { .. } => 2,
                        crate::DirtyCall::ToolHelper { .. } => 0,
                    };
                    if args.len() < min_args {
                        self.errors.push(SanityError::BadDirtyArity {
                            stmt_index: i,
                            expected: min_args,
                            got: args.len(),
                        });
                    }
                    for a in args {
                        self.use_atom(i, a);
                    }
                    if let Some(d) = dst {
                        self.def_temp(i, *d);
                    }
                }
                Stmt::Exit { guard, .. } => self.use_atom(i, guard),
            }
        }
        if let Atom::Tmp(t) = self.block.next {
            if t.0 as usize >= self.defined.len() || !self.defined[t.0 as usize] {
                self.errors.push(SanityError::BadNext { temp: t });
            }
        }
        self.errors
    }
}

/// Check an IR block for structural defects. Returns all defects found.
pub fn check(block: &IrBlock) -> Vec<SanityError> {
    Checker { block, defined: vec![false; block.n_temps as usize], errors: Vec::new() }.run()
}

/// Panic with a readable message if the block is malformed.
pub fn assert_sane(block: &IrBlock, context: &str) {
    let errs = check(block);
    if !errs.is_empty() {
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        panic!(
            "IR sanity check failed ({context}) for block at {:#x}:\n  {}",
            block.base,
            msgs.join("\n  ")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, BinOp, DirtyCall, IrBlock, JumpKind, Rhs, Stmt, Temp, Ty};

    fn sample_block() -> IrBlock {
        let mut b = IrBlock::new(0x1000);
        let t0 = b.new_temp();
        let t1 = b.new_temp();
        b.stmts.push(Stmt::IMark { addr: 0x1000, len: 16 });
        b.stmts.push(Stmt::WrTmp { dst: t0, rhs: Rhs::Get { reg: 5 } });
        b.stmts.push(Stmt::WrTmp {
            dst: t1,
            rhs: Rhs::Binop { op: BinOp::Add, lhs: t0.into(), rhs: Atom::imm(1) },
        });
        b.stmts.push(Stmt::Put { reg: 5, src: t1.into() });
        b.next = Atom::imm(0x1010);
        b.jumpkind = JumpKind::Boring;
        b
    }

    #[test]
    fn well_formed_block_passes() {
        assert!(check(&sample_block()).is_empty());
    }

    #[test]
    fn use_before_def_detected() {
        let mut b = IrBlock::new(0);
        let t0 = b.new_temp();
        b.stmts.push(Stmt::Put { reg: 1, src: t0.into() });
        let errs = check(&b);
        assert_eq!(errs, vec![SanityError::UseBeforeDef { stmt_index: 0, temp: t0 }]);
    }

    #[test]
    fn redefinition_detected() {
        let mut b = IrBlock::new(0);
        let t0 = b.new_temp();
        b.stmts.push(Stmt::WrTmp { dst: t0, rhs: Rhs::Atom(Atom::imm(1)) });
        b.stmts.push(Stmt::WrTmp { dst: t0, rhs: Rhs::Atom(Atom::imm(2)) });
        let errs = check(&b);
        assert_eq!(errs, vec![SanityError::Redefinition { stmt_index: 1, temp: t0 }]);
    }

    #[test]
    fn out_of_range_temp_detected() {
        let mut b = IrBlock::new(0);
        b.stmts.push(Stmt::WrTmp { dst: Temp(7), rhs: Rhs::Atom(Atom::imm(1)) });
        let errs = check(&b);
        assert!(matches!(errs[0], SanityError::TempOutOfRange { .. }));
    }

    #[test]
    fn bad_next_detected() {
        let mut b = IrBlock::new(0);
        let t0 = b.new_temp();
        b.next = t0.into();
        let errs = check(&b);
        assert_eq!(errs, vec![SanityError::BadNext { temp: t0 }]);
    }

    #[test]
    fn dirty_arity_checked() {
        let mut b = IrBlock::new(0);
        b.stmts.push(Stmt::Dirty {
            call: DirtyCall::ToolMem { write: true },
            args: vec![Atom::imm(0x10)],
            dst: None,
        });
        let errs = check(&b);
        assert!(matches!(errs[0], SanityError::BadDirtyArity { .. }));
    }

    #[test]
    fn cas_defines_its_dst() {
        let mut b = IrBlock::new(0);
        let t0 = b.new_temp();
        b.stmts.push(Stmt::Cas {
            dst: t0,
            addr: Atom::imm(0x100),
            expected: Atom::imm(0),
            new: Atom::imm(1),
        });
        b.stmts.push(Stmt::Put { reg: 3, src: t0.into() });
        b.stmts.push(Stmt::Store { ty: Ty::I64, addr: Atom::imm(0x108), val: t0.into() });
        assert!(check(&b).is_empty());
    }

    #[test]
    #[should_panic(expected = "IR sanity check failed")]
    fn assert_sane_panics_on_bad_block() {
        let mut b = IrBlock::new(0);
        let t0 = b.new_temp();
        b.stmts.push(Stmt::Put { reg: 1, src: t0.into() });
        assert_sane(&b, "test");
    }
}
