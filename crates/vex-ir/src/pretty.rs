//! Human-readable printing of IR blocks, in the spirit of
//! `--trace-flags` output from Valgrind. Used by `grindcore --dump-ir`
//! and in test assertions.

use crate::{Atom, DirtyCall, IrBlock, JumpKind, Rhs, Stmt};
use std::fmt::Write;

fn atom(a: &Atom) -> String {
    match a {
        Atom::Const(c) => format!("{c:#x}"),
        Atom::Tmp(t) => format!("t{}", t.0),
    }
}

fn rhs(r: &Rhs) -> String {
    match r {
        Rhs::Atom(a) => atom(a),
        Rhs::Get { reg } => format!("GET(r{reg})"),
        Rhs::Load { ty, addr } => format!("LD{:?}({})", ty, atom(addr)),
        Rhs::Binop { op, lhs, rhs } => format!("{:?}({}, {})", op, atom(lhs), atom(rhs)),
        Rhs::Unop { op, x } => format!("{:?}({})", op, atom(x)),
        Rhs::Ite { cond, then, els } => {
            format!("ITE({}, {}, {})", atom(cond), atom(then), atom(els))
        }
    }
}

fn jump(k: &JumpKind) -> &'static str {
    match k {
        JumpKind::Boring => "Boring",
        JumpKind::Call { .. } => "Call",
        JumpKind::Ret => "Ret",
        JumpKind::Halt => "Halt",
    }
}

/// Render one statement on one line.
pub fn stmt_to_string(s: &Stmt) -> String {
    match s {
        Stmt::IMark { addr, len } => format!("------ IMark({addr:#x}, {len}) ------"),
        Stmt::WrTmp { dst, rhs: r } => format!("t{} = {}", dst.0, rhs(r)),
        Stmt::Put { reg, src } => format!("PUT(r{reg}) = {}", atom(src)),
        Stmt::Store { ty, addr, val } => {
            format!("ST{:?}({}) = {}", ty, atom(addr), atom(val))
        }
        Stmt::Cas { dst, addr, expected, new } => {
            format!("t{} = CAS({}, exp={}, new={})", dst.0, atom(addr), atom(expected), atom(new))
        }
        Stmt::AtomicAdd { dst, addr, val } => {
            format!("t{} = ATOMIC-ADD({}, {})", dst.0, atom(addr), atom(val))
        }
        Stmt::Dirty { call, args, dst } => {
            let name = match call {
                DirtyCall::Syscall => "syscall".to_string(),
                DirtyCall::ClientRequest => "client_request".to_string(),
                DirtyCall::ToolMem { write: true } => "tool_mem_write".to_string(),
                DirtyCall::ToolMem { write: false } => "tool_mem_read".to_string(),
                DirtyCall::ToolHelper { id } => format!("tool_helper#{id}"),
            };
            let args: Vec<String> = args.iter().map(atom).collect();
            match dst {
                Some(d) => format!("t{} = DIRTY {}({})", d.0, name, args.join(", ")),
                None => format!("DIRTY {}({})", name, args.join(", ")),
            }
        }
        Stmt::Exit { guard, target, kind } => {
            format!("if ({}) goto {{{}}} {:#x}", atom(guard), jump(kind), target)
        }
    }
}

/// Render a whole block.
pub fn block_to_string(b: &IrBlock) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "IRSB @ {:#x} ({} temps) {{", b.base, b.n_temps);
    for s in &b.stmts {
        let _ = writeln!(out, "  {}", stmt_to_string(s));
    }
    let _ = writeln!(out, "  goto {{{}}} {}", jump(&b.jumpkind), atom(&b.next));
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, Ty};

    #[test]
    fn renders_representative_statements() {
        let mut b = IrBlock::new(0x40);
        let t0 = b.new_temp();
        let t1 = b.new_temp();
        b.stmts.push(Stmt::IMark { addr: 0x40, len: 16 });
        b.stmts.push(Stmt::WrTmp { dst: t0, rhs: Rhs::Get { reg: 2 } });
        b.stmts.push(Stmt::WrTmp { dst: t1, rhs: Rhs::Load { ty: Ty::I64, addr: t0.into() } });
        b.stmts.push(Stmt::Dirty {
            call: DirtyCall::ToolMem { write: false },
            args: vec![t0.into(), Atom::imm(8)],
            dst: None,
        });
        b.stmts.push(Stmt::Store { ty: Ty::I64, addr: t0.into(), val: t1.into() });
        b.next = Atom::imm(0x50);
        let s = block_to_string(&b);
        assert!(s.contains("IRSB @ 0x40"));
        assert!(s.contains("t0 = GET(r2)"));
        assert!(s.contains("t1 = LDI64(t0)"));
        assert!(s.contains("DIRTY tool_mem_read(t0, 0x8)"));
        assert!(s.contains("STI64(t0) = t1"));
        assert!(s.contains("goto {Boring} 0x50"));
    }

    #[test]
    fn renders_binop_and_exit() {
        let mut b = IrBlock::new(0);
        let t0 = b.new_temp();
        b.stmts.push(Stmt::WrTmp {
            dst: t0,
            rhs: Rhs::Binop { op: BinOp::CmpEq, lhs: Atom::imm(1), rhs: Atom::imm(2) },
        });
        b.stmts.push(Stmt::Exit { guard: t0.into(), target: 0x99, kind: JumpKind::Boring });
        let s = block_to_string(&b);
        assert!(s.contains("t0 = CmpEq(0x1, 0x2)"));
        assert!(s.contains("if (t0) goto {Boring} 0x99"));
    }
}
