//! vex-ir — a VEX-like intermediate representation for heavyweight DBI.
//!
//! Valgrind translates guest machine code into the VEX IR, hands the IR
//! superblock (`IRSB`) to the active *tool* which may inject statements
//! (typically dirty helper calls observing loads and stores), and then
//! executes the instrumented block. This crate reproduces that IR layer
//! for the `grindcore` framework:
//!
//! * [`IrBlock`] is the superblock: a flat statement list plus a block exit.
//! * Statements ([`Stmt`]) only reference *atoms* ([`Atom`]) — temporaries
//!   or constants — mirroring VEX's flattened form, which is what makes
//!   instrumentation trivial: the address of every load/store is always
//!   available in an atom that a tool can pass to a callback.
//! * [`Stmt::Dirty`] models VEX dirty helper calls; the interpreter routes
//!   them to syscalls, client requests, or tool callbacks.
//!
//! The IR is deliberately small (integers of 8 and 64 bits plus IEEE f64,
//! all stored as `u64` bit patterns) but structurally faithful: `IMark`s
//! delimit guest instructions, exits are guarded side exits, and a
//! [`sanity::check`] pass enforces the single-assignment discipline the
//! interpreter relies on.

#![warn(missing_docs)]

pub mod pretty;
pub mod sanity;

use serde::{Deserialize, Serialize};

/// Value types carried by temporaries and memory operations.
///
/// All values are materialized as `u64` bit patterns; `I8` loads/stores
/// touch a single byte, `F64` is an IEEE double stored by bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// One byte, zero-extended to 64 bits when loaded.
    I8,
    /// A 64-bit integer.
    I64,
    /// An IEEE-754 double, stored as its bit pattern.
    F64,
}

impl Ty {
    /// Width of the type in bytes as seen by the memory subsystem.
    pub fn size(self) -> u64 {
        match self {
            Ty::I8 => 1,
            Ty::I64 | Ty::F64 => 8,
        }
    }
}

/// An IR temporary. Temporaries are written exactly once per block
/// (enforced by [`sanity::check`]) and live only within their block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Temp(pub u32);

/// A flat operand: either a constant or a temporary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Atom {
    /// A 64-bit literal (for `F64` ops this is the bit pattern).
    Const(u64),
    /// The value of a temporary defined earlier in the block.
    Tmp(Temp),
}

impl Atom {
    /// Convenience constructor for an immediate.
    pub fn imm(v: u64) -> Atom {
        Atom::Const(v)
    }
}

impl From<Temp> for Atom {
    fn from(t: Temp) -> Atom {
        Atom::Tmp(t)
    }
}

/// Binary operators. Integer comparisons produce 0 or 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; division by zero traps the VM.
    DivS,
    /// Signed remainder; division by zero traps the VM.
    RemS,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Shift left (count masked to 0..63).
    Shl,
    /// Logical shift right.
    ShrU,
    /// Arithmetic shift right.
    ShrS,
    /// Equality, producing 0/1.
    CmpEq,
    /// Inequality, producing 0/1.
    CmpNe,
    /// Signed less-than.
    CmpLtS,
    /// Signed less-or-equal.
    CmpLeS,
    /// Unsigned less-than.
    CmpLtU,
    /// IEEE double addition over bit patterns.
    FAdd,
    /// IEEE double subtraction over bit patterns.
    FSub,
    /// IEEE double multiplication over bit patterns.
    FMul,
    /// IEEE double division over bit patterns.
    FDiv,
    /// IEEE equality producing 0/1 (NaN compares unequal).
    FCmpEq,
    /// IEEE less-than producing 0/1.
    FCmpLt,
    /// IEEE less-or-equal producing 0/1.
    FCmpLe,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Two's complement negation.
    Neg,
    /// Bitwise not.
    Not,
    /// Signed 64-bit integer to IEEE double.
    I2F,
    /// IEEE double to signed 64-bit integer (truncating; NaN maps to 0).
    F2I,
    /// IEEE negation of a double bit pattern.
    FNeg,
    /// Absolute value of a double bit pattern.
    FAbs,
    /// IEEE square root.
    FSqrt,
}

/// The right-hand side of a [`Stmt::WrTmp`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Rhs {
    /// Copy an atom.
    Atom(Atom),
    /// Read a guest register.
    Get {
        /// Guest register number.
        reg: u8,
    },
    /// Load `ty.size()` bytes from guest memory.
    Load {
        /// Width of the load.
        ty: Ty,
        /// Guest address to load from.
        addr: Atom,
    },
    /// A binary operation.
    Binop {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Atom,
        /// Right operand.
        rhs: Atom,
    },
    /// A unary operation.
    Unop {
        /// The operator.
        op: UnOp,
        /// The operand.
        x: Atom,
    },
    /// `if cond != 0 { then } else { els }` — branchless select.
    Ite {
        /// Select condition (any non-zero value selects `then`).
        cond: Atom,
        /// Value when the condition is non-zero.
        then: Atom,
        /// Value when the condition is zero.
        els: Atom,
    },
}

/// Identifies the callee of a [`Stmt::Dirty`] statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirtyCall {
    /// A guest syscall; the number is the first argument by convention.
    Syscall,
    /// A Valgrind-style client request: the instrumented program talking
    /// to the tool. Request code and arguments are the dirty-call args.
    ClientRequest,
    /// A tool-injected memory callback: args are `[addr, size]`.
    /// Only instrumentation inserts these.
    ToolMem {
        /// True for a store callback, false for a load.
        write: bool,
    },
    /// A custom tool helper identified by a tool-chosen id.
    ToolHelper {
        /// Tool-chosen helper id, routed back to the registering tool.
        id: u32,
    },
}

/// Why a block (or side exit) transfers control — Valgrind's `IRJumpKind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum JumpKind {
    /// An ordinary jump or fallthrough.
    Boring,
    /// A function call (the shadow call stack pushes the return address).
    Call {
        /// Guest address execution resumes at after the callee returns.
        return_addr: u64,
    },
    /// A function return (the shadow call stack pops).
    Ret,
    /// The guest executed a halt; the thread exits.
    Halt,
}

impl BinOp {
    /// Stable wire tag for on-disk serialization. Tags are append-only:
    /// new operators take the next free number, existing numbers never
    /// change, so cached code from older sessions stays decodable.
    pub fn wire_tag(self) -> u8 {
        match self {
            BinOp::Add => 0,
            BinOp::Sub => 1,
            BinOp::Mul => 2,
            BinOp::DivS => 3,
            BinOp::RemS => 4,
            BinOp::And => 5,
            BinOp::Or => 6,
            BinOp::Xor => 7,
            BinOp::Shl => 8,
            BinOp::ShrU => 9,
            BinOp::ShrS => 10,
            BinOp::CmpEq => 11,
            BinOp::CmpNe => 12,
            BinOp::CmpLtS => 13,
            BinOp::CmpLeS => 14,
            BinOp::CmpLtU => 15,
            BinOp::FAdd => 16,
            BinOp::FSub => 17,
            BinOp::FMul => 18,
            BinOp::FDiv => 19,
            BinOp::FCmpEq => 20,
            BinOp::FCmpLt => 21,
            BinOp::FCmpLe => 22,
        }
    }

    /// Inverse of [`BinOp::wire_tag`]; `None` on an unknown tag.
    pub fn from_wire_tag(t: u8) -> Option<BinOp> {
        Some(match t {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Mul,
            3 => BinOp::DivS,
            4 => BinOp::RemS,
            5 => BinOp::And,
            6 => BinOp::Or,
            7 => BinOp::Xor,
            8 => BinOp::Shl,
            9 => BinOp::ShrU,
            10 => BinOp::ShrS,
            11 => BinOp::CmpEq,
            12 => BinOp::CmpNe,
            13 => BinOp::CmpLtS,
            14 => BinOp::CmpLeS,
            15 => BinOp::CmpLtU,
            16 => BinOp::FAdd,
            17 => BinOp::FSub,
            18 => BinOp::FMul,
            19 => BinOp::FDiv,
            20 => BinOp::FCmpEq,
            21 => BinOp::FCmpLt,
            22 => BinOp::FCmpLe,
            _ => return None,
        })
    }
}

impl UnOp {
    /// Stable wire tag for on-disk serialization (append-only, like
    /// [`BinOp::wire_tag`]).
    pub fn wire_tag(self) -> u8 {
        match self {
            UnOp::Neg => 0,
            UnOp::Not => 1,
            UnOp::I2F => 2,
            UnOp::F2I => 3,
            UnOp::FNeg => 4,
            UnOp::FAbs => 5,
            UnOp::FSqrt => 6,
        }
    }

    /// Inverse of [`UnOp::wire_tag`]; `None` on an unknown tag.
    pub fn from_wire_tag(t: u8) -> Option<UnOp> {
        Some(match t {
            0 => UnOp::Neg,
            1 => UnOp::Not,
            2 => UnOp::I2F,
            3 => UnOp::F2I,
            4 => UnOp::FNeg,
            5 => UnOp::FAbs,
            6 => UnOp::FSqrt,
            _ => return None,
        })
    }
}

/// A single IR statement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Marks the start of the guest instruction at `addr` (`IMark` in VEX).
    IMark {
        /// Guest address of the instruction.
        addr: u64,
        /// Encoded length of the instruction in bytes.
        len: u32,
    },
    /// Define a temporary.
    WrTmp {
        /// Temporary being defined (exactly once per block).
        dst: Temp,
        /// Value expression.
        rhs: Rhs,
    },
    /// Write a guest register.
    Put {
        /// Guest register number.
        reg: u8,
        /// Value to write.
        src: Atom,
    },
    /// Store to guest memory.
    Store {
        /// Width of the store.
        ty: Ty,
        /// Guest address to store to.
        addr: Atom,
        /// Value to store.
        val: Atom,
    },
    /// Atomic compare-and-swap:
    /// `dst = mem[addr]; if dst == expected { mem[addr] = new }`.
    Cas {
        /// Receives the old memory value.
        dst: Temp,
        /// Guest address operated on.
        addr: Atom,
        /// Value the memory must hold for the swap to happen.
        expected: Atom,
        /// Replacement value.
        new: Atom,
    },
    /// Atomic fetch-and-add: `dst = mem[addr]; mem[addr] += val`.
    AtomicAdd {
        /// Receives the old memory value.
        dst: Temp,
        /// Guest address operated on.
        addr: Atom,
        /// Addend.
        val: Atom,
    },
    /// A dirty helper call (syscall / client request / tool callback).
    Dirty {
        /// Which helper is being called.
        call: DirtyCall,
        /// Call arguments, already flattened to atoms.
        args: Vec<Atom>,
        /// Optional temporary receiving the helper's return value.
        dst: Option<Temp>,
    },
    /// Guarded side exit: if `guard != 0`, leave the block for `target`.
    Exit {
        /// Exit condition (any non-zero value takes the exit).
        guard: Atom,
        /// Constant guest destination address.
        target: u64,
        /// Control-transfer kind of the exit.
        kind: JumpKind,
    },
}

/// A block exit described at translation time, used by the dispatcher's
/// superblock-chaining layer: side exits always carry a constant target;
/// the fallthrough exit only does when `next` is a constant atom.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaticExit {
    /// Constant destination, if known at translation time. `None` marks
    /// an indirect exit (computed `next`, e.g. a return), which the
    /// dispatcher resolves through its indirect-branch target cache.
    pub target: Option<u64>,
    /// Control-transfer kind of the exit.
    pub kind: JumpKind,
}

/// An IR superblock: single entry, one unconditional final exit plus any
/// number of guarded side exits.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IrBlock {
    /// Guest address of the first instruction.
    pub base: u64,
    /// Flat statement list.
    pub stmts: Vec<Stmt>,
    /// Target of the fallthrough exit.
    pub next: Atom,
    /// Kind of the fallthrough exit.
    pub jumpkind: JumpKind,
    /// Number of temporaries used (temps are `0..n_temps`).
    pub n_temps: u32,
}

impl IrBlock {
    /// Create an empty block starting at `base`.
    pub fn new(base: u64) -> IrBlock {
        IrBlock {
            base,
            stmts: Vec::new(),
            next: Atom::Const(0),
            jumpkind: JumpKind::Boring,
            n_temps: 0,
        }
    }

    /// Allocate a fresh temporary.
    pub fn new_temp(&mut self) -> Temp {
        let t = Temp(self.n_temps);
        self.n_temps += 1;
        t
    }

    /// Number of guest instructions in the block (count of IMarks).
    pub fn guest_instrs(&self) -> usize {
        self.stmts.iter().filter(|s| matches!(s, Stmt::IMark { .. })).count()
    }

    /// Iterate over the guest addresses of the instructions in this block.
    pub fn imarks(&self) -> impl Iterator<Item = u64> + '_ {
        self.stmts.iter().filter_map(|s| match s {
            Stmt::IMark { addr, .. } => Some(*addr),
            _ => None,
        })
    }

    /// Number of guarded side exits (`Stmt::Exit`) in the block.
    pub fn side_exit_count(&self) -> usize {
        self.stmts.iter().filter(|s| matches!(s, Stmt::Exit { .. })).count()
    }

    /// Exit descriptors in dispatch order: every side exit in statement
    /// order, then the fallthrough exit last. The index into this vector
    /// is the *exit ordinal* the dispatcher uses for chain-link slots.
    pub fn static_exits(&self) -> Vec<StaticExit> {
        let mut v: Vec<StaticExit> = self
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Exit { target, kind, .. } => {
                    Some(StaticExit { target: Some(*target), kind: *kind })
                }
                _ => None,
            })
            .collect();
        v.push(StaticExit {
            target: match self.next {
                Atom::Const(c) => Some(c),
                Atom::Tmp(_) => None,
            },
            kind: self.jumpkind,
        });
        v
    }

    /// Guest address range `[base, end)` covered by the block's
    /// instructions, from the IMarks. Used for translation invalidation
    /// (self-modifying code / discard requests).
    pub fn extent(&self) -> (u64, u64) {
        let end = self
            .stmts
            .iter()
            .rev()
            .find_map(|s| match s {
                Stmt::IMark { addr, len } => Some(addr + *len as u64),
                _ => None,
            })
            .unwrap_or(self.base);
        (self.base, end.max(self.base))
    }
}

/// Evaluate a binary op on raw 64-bit values. Returns `None` on division
/// by zero, which the VM turns into a guest trap.
#[inline]
pub fn eval_binop(op: BinOp, a: u64, b: u64) -> Option<u64> {
    let fa = f64::from_bits(a);
    let fb = f64::from_bits(b);
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::DivS => {
            if b == 0 {
                return None;
            }
            (a as i64).wrapping_div(b as i64) as u64
        }
        BinOp::RemS => {
            if b == 0 {
                return None;
            }
            (a as i64).wrapping_rem(b as i64) as u64
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::ShrU => a.wrapping_shr(b as u32 & 63),
        BinOp::ShrS => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        BinOp::CmpEq => (a == b) as u64,
        BinOp::CmpNe => (a != b) as u64,
        BinOp::CmpLtS => ((a as i64) < (b as i64)) as u64,
        BinOp::CmpLeS => ((a as i64) <= (b as i64)) as u64,
        BinOp::CmpLtU => (a < b) as u64,
        BinOp::FAdd => (fa + fb).to_bits(),
        BinOp::FSub => (fa - fb).to_bits(),
        BinOp::FMul => (fa * fb).to_bits(),
        BinOp::FDiv => (fa / fb).to_bits(),
        BinOp::FCmpEq => (fa == fb) as u64,
        BinOp::FCmpLt => (fa < fb) as u64,
        BinOp::FCmpLe => (fa <= fb) as u64,
    })
}

/// Evaluate a unary op on a raw 64-bit value.
#[inline]
pub fn eval_unop(op: UnOp, x: u64) -> u64 {
    match op {
        UnOp::Neg => (x as i64).wrapping_neg() as u64,
        UnOp::Not => !x,
        UnOp::I2F => ((x as i64) as f64).to_bits(),
        UnOp::F2I => {
            let f = f64::from_bits(x);
            if f.is_nan() {
                0
            } else {
                (f as i64) as u64
            }
        }
        UnOp::FNeg => (-f64::from_bits(x)).to_bits(),
        UnOp::FAbs => f64::from_bits(x).abs().to_bits(),
        UnOp::FSqrt => f64::from_bits(x).sqrt().to_bits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_sizes() {
        assert_eq!(Ty::I8.size(), 1);
        assert_eq!(Ty::I64.size(), 8);
        assert_eq!(Ty::F64.size(), 8);
    }

    #[test]
    fn binop_integer_semantics() {
        assert_eq!(eval_binop(BinOp::Add, 3, 4), Some(7));
        assert_eq!(eval_binop(BinOp::Sub, 3, 4), Some(u64::MAX));
        assert_eq!(eval_binop(BinOp::Mul, u64::MAX, 2), Some(u64::MAX - 1));
        assert_eq!(eval_binop(BinOp::DivS, (-9i64) as u64, 2), Some((-4i64) as u64));
        assert_eq!(eval_binop(BinOp::RemS, (-9i64) as u64, 2), Some((-1i64) as u64));
        assert_eq!(eval_binop(BinOp::DivS, 1, 0), None);
        assert_eq!(eval_binop(BinOp::RemS, 1, 0), None);
    }

    #[test]
    fn binop_comparisons_are_signed_where_named() {
        let neg1 = (-1i64) as u64;
        assert_eq!(eval_binop(BinOp::CmpLtS, neg1, 0), Some(1));
        assert_eq!(eval_binop(BinOp::CmpLtU, neg1, 0), Some(0));
        assert_eq!(eval_binop(BinOp::CmpLeS, 5, 5), Some(1));
        assert_eq!(eval_binop(BinOp::CmpEq, 5, 5), Some(1));
        assert_eq!(eval_binop(BinOp::CmpNe, 5, 5), Some(0));
    }

    #[test]
    fn binop_shifts_mask_the_count() {
        assert_eq!(eval_binop(BinOp::Shl, 1, 64), Some(1));
        assert_eq!(eval_binop(BinOp::ShrU, 0x8000_0000_0000_0000, 63), Some(1));
        assert_eq!(eval_binop(BinOp::ShrS, 0x8000_0000_0000_0000, 63), Some(u64::MAX));
    }

    #[test]
    fn binop_float_semantics() {
        let two = 2.0f64.to_bits();
        let three = 3.0f64.to_bits();
        assert_eq!(eval_binop(BinOp::FAdd, two, three), Some(5.0f64.to_bits()));
        assert_eq!(eval_binop(BinOp::FMul, two, three), Some(6.0f64.to_bits()));
        assert_eq!(eval_binop(BinOp::FCmpLt, two, three), Some(1));
        assert_eq!(eval_binop(BinOp::FCmpEq, two, two), Some(1));
        let nan = f64::NAN.to_bits();
        assert_eq!(eval_binop(BinOp::FCmpEq, nan, nan), Some(0));
    }

    #[test]
    fn unop_semantics() {
        assert_eq!(eval_unop(UnOp::Neg, 1), u64::MAX);
        assert_eq!(eval_unop(UnOp::Not, 0), u64::MAX);
        assert_eq!(eval_unop(UnOp::I2F, (-3i64) as u64), (-3.0f64).to_bits());
        assert_eq!(eval_unop(UnOp::F2I, (-3.7f64).to_bits()), (-3i64) as u64);
        assert_eq!(eval_unop(UnOp::F2I, f64::NAN.to_bits()), 0);
        assert_eq!(eval_unop(UnOp::FNeg, 1.5f64.to_bits()), (-1.5f64).to_bits());
        assert_eq!(eval_unop(UnOp::FAbs, (-1.5f64).to_bits()), 1.5f64.to_bits());
        assert_eq!(eval_unop(UnOp::FSqrt, 9.0f64.to_bits()), 3.0f64.to_bits());
    }

    #[test]
    fn static_exits_and_extent() {
        let mut b = IrBlock::new(0x1000);
        let t0 = b.new_temp();
        b.stmts.push(Stmt::IMark { addr: 0x1000, len: 16 });
        b.stmts.push(Stmt::WrTmp { dst: t0, rhs: Rhs::Atom(Atom::imm(1)) });
        b.stmts.push(Stmt::Exit { guard: t0.into(), target: 0x2000, kind: JumpKind::Boring });
        b.stmts.push(Stmt::IMark { addr: 0x1010, len: 16 });
        b.next = Atom::imm(0x1020);
        assert_eq!(b.side_exit_count(), 1);
        let exits = b.static_exits();
        assert_eq!(exits.len(), 2);
        assert_eq!(exits[0], StaticExit { target: Some(0x2000), kind: JumpKind::Boring });
        assert_eq!(exits[1], StaticExit { target: Some(0x1020), kind: JumpKind::Boring });
        assert_eq!(b.extent(), (0x1000, 0x1020));

        // Indirect fallthrough (computed next) has no static target.
        b.next = t0.into();
        assert_eq!(b.static_exits()[1].target, None);

        // A block with no IMarks covers nothing.
        assert_eq!(IrBlock::new(0x40).extent(), (0x40, 0x40));
    }

    #[test]
    fn block_temp_allocation_and_imarks() {
        let mut b = IrBlock::new(0x1000);
        let t0 = b.new_temp();
        let t1 = b.new_temp();
        assert_eq!(t0, Temp(0));
        assert_eq!(t1, Temp(1));
        assert_eq!(b.n_temps, 2);
        b.stmts.push(Stmt::IMark { addr: 0x1000, len: 16 });
        b.stmts.push(Stmt::WrTmp { dst: t0, rhs: Rhs::Atom(Atom::imm(1)) });
        b.stmts.push(Stmt::IMark { addr: 0x1010, len: 16 });
        assert_eq!(b.guest_instrs(), 2);
        assert_eq!(b.imarks().collect::<Vec<_>>(), vec![0x1000, 0x1010]);
    }
}
