//! Workspace integration tests: the full pipeline
//! (minicc → tga module → grindcore VM → taskgrind analysis → report)
//! exercised across crates, including the paper's Listing 4 → Listing 6
//! scenario.

use grindcore::tool::NulTool;
use grindcore::{ExecMode, Vm, VmConfig};
use taskgrind::{check_module, TaskgrindConfig};
use tga::module::Module;

/// Listing 4 of the paper, ported to minic.
const LISTING_4: &str = r#"int main(void)
{
    int *x = (int*) malloc(2 * sizeof(int));
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task
            x[0] = 42;

            #pragma omp task
            x[0] = 43;
        }
    }
    return 0;
}
"#;

#[test]
fn listing4_to_listing6() {
    let module = guest_rt::build_single("task.c", LISTING_4).unwrap();
    let cfg = TaskgrindConfig {
        vm: VmConfig { nthreads: 2, ..Default::default() },
        ..Default::default()
    };
    let result = check_module(&module, &[], &cfg);
    assert!(result.run.ok(), "{:?}", result.run.error);
    assert_eq!(result.n_reports(), 1, "{}", result.render_all());
    let report = &result.reports[0];
    // Listing 6 shape: both segments by file:line, block info, alloc site.
    assert!(report.site1.starts_with("task.c:"));
    assert!(report.site2.starts_with("task.c:"));
    let (base, size, site) = report.block.as_ref().expect("heap block identified");
    assert_eq!(*size, 16, "malloc(2 * sizeof(int)); minic int is 64-bit");
    assert!(*base > 0);
    assert_eq!(site, "task.c:3", "allocation site is the malloc line");
    let text = taskgrind::report::render_taskgrind(report);
    assert!(text.contains("were declared independent while accessing the same memory address"));
}

#[test]
fn module_binary_roundtrip_runs_identically() {
    // compile → serialize to the binary container → reload → run:
    // the DBI workflow over an opaque binary.
    let module = guest_rt::build_single("task.c", LISTING_4).unwrap();
    let bytes = module.to_bytes();
    let reloaded = Module::from_bytes(&bytes).unwrap();
    assert_eq!(module, reloaded);

    let cfg = VmConfig { nthreads: 2, ..Default::default() };
    let r1 = Vm::new(module, Box::new(NulTool), cfg.clone()).run(ExecMode::Fast, &[]);
    let r2 = Vm::new(reloaded, Box::new(NulTool), cfg).run(ExecMode::Fast, &[]);
    assert_eq!(r1.exit_code, r2.exit_code);
    assert_eq!(r1.metrics.instrs, r2.metrics.instrs);
}

#[test]
fn runs_are_deterministic_per_seed() {
    let module = guest_rt::build_single("task.c", LISTING_4).unwrap();
    let run = |seed| {
        let cfg = VmConfig {
            nthreads: 4,
            seed,
            sched: grindcore::SchedPolicy::Random,
            ..Default::default()
        };
        let r = Vm::new(module.clone(), Box::new(NulTool), cfg).run(ExecMode::Fast, &[]);
        (r.exit_code, r.metrics.instrs, r.metrics.switches)
    };
    assert_eq!(run(7), run(7), "same seed ⇒ identical execution");
}

#[test]
fn taskgrind_results_are_schedule_independent() {
    // the segment graph comes from declared semantics, so the verdict
    // must not depend on the schedule
    let module = guest_rt::build_single("task.c", LISTING_4).unwrap();
    let mut counts = Vec::new();
    for seed in [1u64, 2, 3] {
        let cfg = TaskgrindConfig {
            vm: VmConfig {
                nthreads: 2,
                seed,
                sched: grindcore::SchedPolicy::Random,
                ..Default::default()
            },
            ..Default::default()
        };
        counts.push(check_module(&module, &[], &cfg).n_reports());
    }
    assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");
}

#[test]
fn dbi_and_fast_agree_on_task_programs() {
    let program = r#"
int main(void) {
    int acc = 0;
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single
        {
            for (int i = 1; i <= 8; i++) {
                #pragma omp task shared(acc) depend(inout: acc)
                acc = acc + i;
            }
            #pragma omp taskwait
        }
    }
    return acc;
}
"#;
    let module = guest_rt::build_single("sum.c", program).unwrap();
    let cfg = VmConfig { nthreads: 2, ..Default::default() };
    let fast = Vm::new(module.clone(), Box::new(NulTool), cfg.clone()).run(ExecMode::Fast, &[]);
    let dbi = Vm::new(module, Box::new(NulTool), cfg).run(ExecMode::Dbi, &[]);
    assert_eq!(fast.exit_code, Some(36), "{:?}", fast.error);
    assert_eq!(dbi.exit_code, Some(36), "{:?}", dbi.error);
    // instruction counts are compared only single-threaded (see the
    // differential suite): multithreaded spin loops run for different
    // lengths under the two modes' scheduling quanta
}

#[test]
fn all_four_tools_run_the_same_binary_family() {
    use minicc::SourceFile;
    let vm = VmConfig { nthreads: 2, ..Default::default() };
    let plain = guest_rt::build_single("task.c", LISTING_4).unwrap();
    let tsan = guest_rt::build_program_tsan(&[SourceFile::new("task.c", LISTING_4)]).unwrap();

    let tg = check_module(&plain, &[], &TaskgrindConfig { vm: vm.clone(), ..Default::default() });
    assert!(tg.n_reports() > 0);
    let romp = tg_baselines::romp::run_romp(&plain, &[], &vm);
    assert!(romp.found_race());
    let tsan_r = tg_baselines::tasksan::run_tasksan(&tsan, &[], &vm);
    assert!(tsan_r.found_race());
    // archer is schedule-dependent; just require a clean run
    let archer = tg_baselines::archer::run_archer(&tsan, &[], &vm);
    assert!(archer.run.ok());
}
