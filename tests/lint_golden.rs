//! Golden-file test for `tgrind lint` over the DRB/TMB kernel corpus.
//!
//! One line per corpus program: the static-filter rate, the lock
//! universe and guarded-site counts, and every *lock* finding (cycle /
//! double lock / leak) with its `file:line` anchor. The file is checked
//! in (`tests/golden/drb_lint.golden`) and CI diffs against it, so a
//! change in lint verdicts on the corpus is always a conscious,
//! reviewed decision — bless with `UPDATE_GOLDEN=1 cargo test --test
//! lint_golden`.

use std::fmt::Write as _;
use tg_drb::corpus::{corpus, BenchProgram};
use tg_drb::extra_corpus;
use tga_analysis::{analyze_with, AnalyzeOpts, Finding, FindingKind, StaticFacts};

/// The full kernel set: Table-I DRB/TMB programs plus the extended
/// kernels (explicit OMP locks, detach, Cilk, barriers).
fn all_programs() -> Vec<BenchProgram> {
    let mut v = corpus();
    v.extend(extra_corpus());
    v
}

fn lock_findings(facts: &StaticFacts) -> Vec<&Finding> {
    facts
        .findings
        .iter()
        .filter(|f| {
            matches!(
                f.kind,
                FindingKind::LockOrderCycle { .. }
                    | FindingKind::DoubleLock { .. }
                    | FindingKind::LockLeak { .. }
            )
        })
        .collect()
}

fn render_golden() -> String {
    let mut out = String::new();
    for p in all_programs() {
        let Ok(m) = guest_rt::build_single(p.name, p.source) else {
            let _ = writeln!(out, "{}: does-not-compile", p.name);
            continue;
        };
        let facts = analyze_with(&m, &AnalyzeOpts::default());
        let _ = write!(
            out,
            "{}: safe {}/{}, locks {}, guarded {}",
            p.name,
            facts.safe_pcs.len(),
            facts.access_pcs,
            facts.lock_universe.len(),
            facts.guarded.len()
        );
        let lock = lock_findings(&facts);
        if lock.is_empty() {
            let _ = writeln!(out, ", lock-findings none");
        } else {
            let _ = writeln!(out, ", lock-findings {}", lock.len());
            for f in lock {
                let _ = writeln!(out, "  {f}");
            }
        }
    }
    out
}

#[test]
fn drb_lint_matches_golden() {
    let got = render_golden();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/drb_lint.golden");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("tests/golden/drb_lint.golden missing — bless with UPDATE_GOLDEN=1");
    assert_eq!(
        got, want,
        "corpus lint verdicts drifted from tests/golden/drb_lint.golden; \
         if intentional, bless with UPDATE_GOLDEN=1 cargo test --test lint_golden"
    );
}

/// No DRB/TMB kernel contains a lock-order cycle, a double lock, or a
/// lock leak — any lock finding on the corpus is a false positive.
#[test]
fn corpus_has_zero_lock_finding_false_positives() {
    for p in all_programs() {
        let Ok(m) = guest_rt::build_single(p.name, p.source) else { continue };
        let facts = analyze_with(&m, &AnalyzeOpts::default());
        let lock = lock_findings(&facts);
        assert!(lock.is_empty(), "{}: false positive lock finding(s): {lock:?}", p.name);
    }
}
