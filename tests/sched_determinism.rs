//! Scheduler determinism regression test for the dispatch overhaul:
//! under the seeded random scheduler, the same `--seed` must yield the
//! same schedule and the same verdicts whether chaining is on or off.
//! This pins the invariant the chained dispatcher was built around —
//! chaining changes how a block is *found*, never when a thread runs.

use grindcore::{SchedPolicy, VmConfig};
use taskgrind::{check_module, TaskgrindConfig};
use tg_drb::corpus::{corpus, Suite};

const SEEDS: [u64; 3] = [1, 7, 1234];

#[test]
fn random_scheduler_is_chaining_invariant_across_seeds() {
    let mut schedules_checked = 0u64;
    for p in corpus() {
        let Ok(m) = guest_rt::build_single(p.name, p.source) else {
            continue;
        };
        // DRB at its Table I thread count; TMB at 4 (the interesting
        // multithreaded case for scheduling).
        let nt = match p.suite {
            Suite::Drb => 4,
            Suite::Tmb => 4,
        };
        for seed in SEEDS {
            let run = |chaining: bool| {
                let cfg = TaskgrindConfig {
                    vm: VmConfig {
                        nthreads: nt,
                        seed,
                        sched: SchedPolicy::Random,
                        chaining,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                check_module(&m, &[], &cfg)
            };
            let on = run(true);
            let off = run(false);
            assert_eq!(
                on.run.metrics.sched_digest, off.run.metrics.sched_digest,
                "{} (seed {seed}): chaining changed the schedule",
                p.name
            );
            assert_eq!(
                on.run.metrics.switches, off.run.metrics.switches,
                "{} (seed {seed}): chaining changed the slice count",
                p.name
            );
            assert_eq!(
                on.run.deadlock, off.run.deadlock,
                "{} (seed {seed}): deadlock verdict changed",
                p.name
            );
            assert_eq!(
                on.n_reports(),
                off.n_reports(),
                "{} (seed {seed}): race verdict changed\non:\n{}\noff:\n{}",
                p.name,
                on.render_all(),
                off.render_all()
            );
            schedules_checked += 1;

            // And the digest is a real schedule fingerprint: rerunning
            // the same seed reproduces it exactly.
            let again = run(true);
            assert_eq!(
                on.run.metrics.sched_digest, again.run.metrics.sched_digest,
                "{} (seed {seed}): same seed must reproduce the schedule",
                p.name
            );
        }
    }
    assert!(schedules_checked >= 3, "the corpus must exercise at least the 3 seeds");
}
