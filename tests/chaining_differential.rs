//! Differential tests for superblock chaining and the bounded
//! translation cache: the dispatch optimizations must be *invisible* to
//! the guest. Chaining on, chaining off, and a pathologically tiny
//! cache must produce bit-identical architectural state, identical
//! memory-access streams, identical schedules, and identical Table I
//! race/deadlock verdicts — the contract that lets the Table II
//! overhead numbers be compared against the unoptimized dispatcher.

use grindcore::tool::{instrument_mem_accesses, BlockMeta, Tool};
use grindcore::{ExecMode, RunResult, Tid, Vm, VmConfig, VmCore};
use std::cell::Cell;
use std::rc::Rc;
use taskgrind::{check_module, TaskgrindConfig};
use tg_drb::corpus::{corpus, Suite};
use vex_ir::IrBlock;

/// FNV-1a fold, same shape as the VM's scheduler digest.
fn fold(digest: u64, v: u64) -> u64 {
    let mut d = if digest == 0 { 0xcbf2_9ce4_8422_2325 } else { digest };
    for b in v.to_le_bytes() {
        d = (d ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    d
}

/// A tool that digests every memory-access callback in order: two runs
/// with equal digests saw the same accesses by the same threads at the
/// same pcs, in the same order.
struct StreamHashTool {
    digest: Rc<Cell<u64>>,
}

impl Tool for StreamHashTool {
    fn name(&self) -> &'static str {
        "streamhash"
    }

    fn instrument(&mut self, block: IrBlock, _meta: &BlockMeta) -> IrBlock {
        instrument_mem_accesses(block)
    }

    fn mem_access(
        &mut self,
        _core: &mut VmCore,
        tid: Tid,
        addr: u64,
        size: u64,
        write: bool,
        pc: u64,
    ) {
        let mut d = self.digest.get();
        for v in [tid as u64, addr, size, write as u64, pc] {
            d = fold(d, v);
        }
        self.digest.set(d);
    }
}

/// Run a module under the stream-hash tool; returns the run outcome,
/// the access-stream digest, and a digest of the final architectural
/// state (registers + pc + status of every thread).
fn stream_run(m: &tga::module::Module, cfg: VmConfig) -> (RunResult, u64, u64) {
    let digest = Rc::new(Cell::new(0u64));
    let tool = StreamHashTool { digest: digest.clone() };
    let mut vm = Vm::new(m.clone(), Box::new(tool), cfg);
    let r = vm.run(ExecMode::Dbi, &[]);
    let mut arch = 0u64;
    for t in &vm.core.threads {
        arch = fold(arch, t.pc);
        arch = fold(arch, matches!(t.status, grindcore::ThreadStatus::Exited) as u64);
        for &reg in &t.regs {
            arch = fold(arch, reg);
        }
    }
    (r, digest.get(), arch)
}

fn cfg(nthreads: u64, chaining: bool, cache_blocks: usize) -> VmConfig {
    VmConfig { nthreads, chaining, cache_blocks, ..Default::default() }
}

fn cfg_async(nthreads: u64, cache_blocks: usize, compile_threads: usize) -> VmConfig {
    VmConfig { compile_threads, ..cfg(nthreads, true, cache_blocks) }
}

/// Chaining, tiny-cache eviction churn, and the background compile pool
/// must not change a single architectural or observable bit across the
/// whole Table I corpus.
#[test]
fn chaining_is_invisible_to_the_guest() {
    let mut total_chain_hits = 0u64;
    let mut total_evictions = 0u64;
    let mut total_fallbacks = 0u64;
    let mut total_promoted = 0u64;
    for p in corpus() {
        let Ok(m) = guest_rt::build_single(p.name, p.source) else {
            continue;
        };
        let nt = match p.suite {
            Suite::Drb => 4,
            Suite::Tmb => 4,
        };
        let (on, acc_on, arch_on) = stream_run(&m, cfg(nt, true, 4096));
        let (off, acc_off, arch_off) = stream_run(&m, cfg(nt, false, 4096));
        let (tiny, acc_tiny, arch_tiny) = stream_run(&m, cfg(nt, true, 8));
        let (a1, acc_a1, arch_a1) = stream_run(&m, cfg_async(nt, 4096, 1));
        let (a4, acc_a4, arch_a4) = stream_run(&m, cfg_async(nt, 4096, 4));

        for (label, other, acc, arch) in [
            ("no-chaining", &off, acc_off, arch_off),
            ("tiny-cache", &tiny, acc_tiny, arch_tiny),
            ("async-compile t1", &a1, acc_a1, arch_a1),
            ("async-compile t4", &a4, acc_a4, arch_a4),
        ] {
            assert_eq!(on.exit_code, other.exit_code, "{}: exit code vs {label}", p.name);
            assert_eq!(on.stdout, other.stdout, "{}: stdout vs {label}", p.name);
            assert_eq!(on.deadlock, other.deadlock, "{}: deadlock vs {label}", p.name);
            assert_eq!(
                on.metrics.instrs, other.metrics.instrs,
                "{}: instruction count vs {label}",
                p.name
            );
            assert_eq!(
                on.metrics.blocks, other.metrics.blocks,
                "{}: block count vs {label}",
                p.name
            );
            assert_eq!(acc_on, acc, "{}: access stream diverged vs {label}", p.name);
            assert_eq!(arch_on, arch, "{}: architectural state diverged vs {label}", p.name);
        }
        // Same scheduler decisions chaining on/off (the tiny cache and
        // async-compile runs also may not disturb the schedule).
        assert_eq!(on.metrics.sched_digest, off.metrics.sched_digest, "{}: schedule", p.name);
        assert_eq!(on.metrics.sched_digest, tiny.metrics.sched_digest, "{}: schedule", p.name);
        assert_eq!(on.metrics.sched_digest, a1.metrics.sched_digest, "{}: schedule", p.name);
        assert_eq!(on.metrics.sched_digest, a4.metrics.sched_digest, "{}: schedule", p.name);

        assert_eq!(off.metrics.dispatch.chain_hits, 0, "{}: --no-chaining must not chain", p.name);
        assert_eq!(on.metrics.compile.workers, 0, "{}: sync run must not spawn workers", p.name);
        for (label, a) in [("t1", &a1), ("t4", &a4)] {
            assert!(
                a.metrics.compile.workers > 0,
                "{}: async {label} must run compile workers",
                p.name
            );
            assert_eq!(
                a.metrics.compile.queued + a.metrics.compile.inline_compiles,
                a.metrics.translations,
                "{}: async {label} must route every translation through the pool or inline",
                p.name
            );
        }
        total_chain_hits += on.metrics.dispatch.chain_hits;
        total_evictions += tiny.metrics.dispatch.evictions;
        total_fallbacks += a4.metrics.compile.fallback_executions;
        total_promoted += a1.metrics.compile.installed + a4.metrics.compile.installed;
    }
    assert!(total_chain_hits > 0, "chaining must actually serve dispatches somewhere");
    assert!(total_evictions > 0, "the tiny cache must actually evict somewhere");
    assert!(total_fallbacks > 0, "async compile must actually tree-walk cold blocks somewhere");
    assert!(total_promoted > 0, "compile workers must actually promote blocks somewhere");
}

/// The end-to-end contract: `--no-chaining` and every
/// `--compile-threads` setting yield the same Table I race/deadlock
/// verdicts under the full Taskgrind tool.
#[test]
fn chaining_preserves_table1_verdicts() {
    for p in corpus() {
        let Ok(m) = guest_rt::build_single(p.name, p.source) else {
            continue; // ncs entries stay ncs either way
        };
        let threads: &[u64] = match p.suite {
            Suite::Drb => &[4],
            Suite::Tmb => &[1, 4],
        };
        for &nt in threads {
            let run = |chaining: bool, compile_threads: usize| {
                let cfg = TaskgrindConfig {
                    vm: VmConfig { nthreads: nt, chaining, compile_threads, ..Default::default() },
                    ..Default::default()
                };
                check_module(&m, &[], &cfg)
            };
            let on = run(true, 0);
            for (label, other) in [
                ("chaining off", run(false, 0)),
                ("async compile t1", run(true, 1)),
                ("async compile t4", run(true, 4)),
            ] {
                assert_eq!(
                    on.run.deadlock, other.run.deadlock,
                    "{} ({} threads): deadlock outcome changed by {label}",
                    p.name, nt
                );
                assert_eq!(
                    on.n_reports(),
                    other.n_reports(),
                    "{} ({} threads): race verdict changed by {label}\non:\n{}\nother:\n{}",
                    p.name,
                    nt,
                    on.render_all(),
                    other.render_all()
                );
                assert_eq!(
                    on.render_all(),
                    other.render_all(),
                    "{} ({} threads): report text changed by {label}",
                    p.name,
                    nt
                );
                assert_eq!(
                    on.accesses_recorded, other.accesses_recorded,
                    "{} ({} threads): recorded access count changed by {label}",
                    p.name, nt
                );
                assert_eq!(
                    on.run.metrics.sched_digest, other.run.metrics.sched_digest,
                    "{} ({} threads): schedule changed by {label}",
                    p.name, nt
                );
            }
        }
    }
}
