//! Differential tests for the persistent code cache: a warm run — every
//! block installed from disk instead of compiled — must be invisible in
//! every verdict-bearing output. Candidate list, raw-range and
//! suppression counters, recorded accesses, and rendered report text
//! must be bit-identical to a cache-less reference across streaming ×
//! static-concurrency, plus the chaining-off case (where the cache is
//! deliberately inert: the reference engine executes IR, which the
//! cache does not store).
//!
//! `sites_pruned` / `sites_instrumented` are deliberately NOT compared:
//! they count instrumentation work, and skipping instrumentation is the
//! cache's whole point. `accesses_recorded` IS compared — the cached
//! blocks must fire exactly the callbacks the cold ones did.
//!
//! Also covers self-modifying code: an SMC store must evict the
//! overlapping entry from disk, and the next run must recompile it
//! (observed through the `cache.misses` metric).

use std::cell::RefCell;
use std::fs;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use grindcore::{CodeCacheHandle, ExecMode, Vm, VmConfig};
use taskgrind::analysis::SuppressOptions;
use taskgrind::tool::RecordOptions;
use taskgrind::{check_module, TaskgrindConfig, TaskgrindResult};
use tg_cache::{module_hash, DiskCodeCache};
use tg_drb::corpus::corpus;
use tg_lulesh::harness::LuleshParams;
use tg_lulesh::LULESH_MC;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "tg-cache-diff-{}-{}-{}",
        tag,
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

/// One run configuration; the cache fingerprint mirrors the CLI's rule:
/// knobs that shape translated code (here: `static_concurrency`, which
/// selects which facts are stored) key the cache, analysis-side knobs
/// (streaming) share it.
#[derive(Clone, Copy)]
struct Cfg {
    chaining: bool,
    streaming: bool,
    concurrency: bool,
    threads: u64,
}

fn open_cache(dir: &Path, m: &tga::module::Module, c: Cfg) -> Rc<RefCell<DiskCodeCache>> {
    let fp = c.concurrency as u64;
    Rc::new(RefCell::new(DiskCodeCache::open(dir, module_hash(m), fp).expect("cache opens")))
}

fn run(
    m: &tga::module::Module,
    args: &[&str],
    c: Cfg,
    cache: Option<&Rc<RefCell<DiskCodeCache>>>,
) -> TaskgrindResult {
    let cfg = TaskgrindConfig {
        vm: VmConfig { nthreads: c.threads, chaining: c.chaining, ..Default::default() },
        record: RecordOptions { static_concurrency: c.concurrency, ..Default::default() },
        suppress: SuppressOptions { static_proof: c.concurrency, ..Default::default() },
        analysis_threads: 2,
        streaming: c.streaming,
        code_cache: cache.map(|rc| CodeCacheHandle::new(rc.clone())),
        ..Default::default()
    };
    let r = check_module(m, args, &cfg);
    if let Some(rc) = cache {
        rc.borrow_mut().flush().expect("cache flushes");
    }
    r
}

/// Everything verdict-bearing must match the reference bit for bit.
fn assert_identical(a: &TaskgrindResult, b: &TaskgrindResult, ctx: &str) {
    assert_eq!(a.analysis.candidates, b.analysis.candidates, "{ctx}: candidates");
    assert_eq!(a.analysis.raw_ranges, b.analysis.raw_ranges, "{ctx}: raw_ranges");
    assert_eq!(a.analysis.suppressed_locks, b.analysis.suppressed_locks, "{ctx}: locks");
    assert_eq!(a.analysis.suppressed_mutex, b.analysis.suppressed_mutex, "{ctx}: mutex");
    assert_eq!(a.analysis.suppressed_tls, b.analysis.suppressed_tls, "{ctx}: tls");
    assert_eq!(a.analysis.suppressed_stack, b.analysis.suppressed_stack, "{ctx}: stack");
    assert_eq!(a.analysis.suppressed_static, b.analysis.suppressed_static, "{ctx}: static");
    assert_eq!(a.accesses_recorded, b.accesses_recorded, "{ctx}: accesses recorded");
    assert_eq!(a.run.metrics.instrs, b.run.metrics.instrs, "{ctx}: guest instrs");
    assert_eq!(a.run.exit_code, b.run.exit_code, "{ctx}: exit code");
    assert_eq!(a.n_reports(), b.n_reports(), "{ctx}: report count");
    assert_eq!(a.render_all(), b.render_all(), "{ctx}: report text");
}

/// The `==` summary keeps its historical 4-line shape without a cache
/// and gains exactly the `== code cache:` line with one.
fn assert_summary_shape(r: &TaskgrindResult, cached: bool, ctx: &str) {
    let mut reg = tg_obs::Registry::new();
    taskgrind::metrics::publish(r, &mut reg);
    let s = taskgrind::metrics::render_summary(&reg);
    let want = if cached { 5 } else { 4 };
    assert_eq!(s.matches("== ").count(), want, "{ctx}: summary line count\n{s}");
    assert_eq!(s.contains("== code cache:"), cached, "{ctx}: cache line presence\n{s}");
}

fn hit_rate(r: &TaskgrindResult) -> f64 {
    let c = r.run.metrics.cache;
    c.hits as f64 / (c.hits + c.misses).max(1) as f64
}

/// Cold-populate then warm-run every Table I program: both cached runs
/// must match the cache-less reference bit for bit, and the warm run
/// must serve ≥90% of its translations from disk.
#[test]
fn warm_runs_preserve_table1_verdicts() {
    let combos = [
        Cfg { chaining: true, streaming: false, concurrency: true, threads: 2 },
        Cfg { chaining: true, streaming: true, concurrency: false, threads: 2 },
    ];
    let mut any_candidates = false;
    for p in corpus() {
        let Ok(m) = guest_rt::build_single(p.name, p.source) else {
            continue; // ncs entries stay ncs either way
        };
        for c in combos {
            let dir = temp_dir("corpus");
            let reference = run(&m, &[], c, None);
            any_candidates |= !reference.analysis.candidates.is_empty();
            assert_summary_shape(&reference, false, p.name);

            let cache = open_cache(&dir, &m, c);
            let cold = run(&m, &[], c, Some(&cache));
            let ctx = format!(
                "{} (streaming={}, concurrency={}) cold",
                p.name, c.streaming, c.concurrency
            );
            assert_identical(&reference, &cold, &ctx);
            assert_summary_shape(&cold, true, &ctx);
            assert_eq!(cold.run.metrics.cache.hits, 0, "{ctx}: first run finds empty cache");
            assert!(cold.run.metrics.cache.bytes_stored > 0, "{ctx}: cold run populates");

            let cache = open_cache(&dir, &m, c);
            let warm = run(&m, &[], c, Some(&cache));
            let ctx = format!(
                "{} (streaming={}, concurrency={}) warm",
                p.name, c.streaming, c.concurrency
            );
            assert_identical(&reference, &warm, &ctx);
            assert_summary_shape(&warm, true, &ctx);
            assert!(warm.run.metrics.cache.hits > 0, "{ctx}: warm run must hit");
            assert!(
                hit_rate(&warm) >= 0.9,
                "{ctx}: hit rate {:.3} below 0.9 ({:?})",
                hit_rate(&warm),
                warm.run.metrics.cache
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }
    assert!(any_candidates, "the corpus must exercise non-empty candidate sets");
}

/// Streaming and batch runs share one cache file: the analysis engine
/// is not part of the key (it does not shape translated code), so a
/// batch-populated cache warms a streaming run and vice versa.
#[test]
fn analysis_engines_share_the_cache() {
    let p = corpus().into_iter().find(|p| guest_rt::build_single(p.name, p.source).is_ok());
    let p = p.expect("corpus has buildable entries");
    let m = guest_rt::build_single(p.name, p.source).unwrap();
    let dir = temp_dir("share");
    let batch = Cfg { chaining: true, streaming: false, concurrency: true, threads: 2 };
    let streaming = Cfg { streaming: true, ..batch };

    let reference = run(&m, &[], streaming, None);
    let cache = open_cache(&dir, &m, batch);
    run(&m, &[], batch, Some(&cache));
    let cache = open_cache(&dir, &m, streaming);
    let warm = run(&m, &[], streaming, Some(&cache));
    assert_identical(&reference, &warm, "batch-warmed streaming run");
    assert!(warm.run.metrics.cache.hits > 0, "cross-engine warm run must hit");
    let _ = fs::remove_dir_all(&dir);
}

/// With chaining off the reference engine executes IR, which the cache
/// does not store: the *block* path must stay completely inert (no
/// hits, no misses) and change nothing. Facts still ride the cache —
/// static analysis is engine-independent.
#[test]
fn cache_is_inert_without_chaining() {
    let p = corpus().into_iter().find(|p| guest_rt::build_single(p.name, p.source).is_ok());
    let p = p.expect("corpus has buildable entries");
    let m = guest_rt::build_single(p.name, p.source).unwrap();
    let dir = temp_dir("nochain");
    let c = Cfg { chaining: false, streaming: false, concurrency: true, threads: 2 };

    let reference = run(&m, &[], c, None);
    let cache = open_cache(&dir, &m, c);
    let cached = run(&m, &[], c, Some(&cache));
    assert_identical(&reference, &cached, "no-chaining cached run");
    let stats = cached.run.metrics.cache;
    assert_eq!((stats.hits, stats.misses, stats.bytes_loaded), (0, 0, 0), "{stats:?}");
    // ... but the statically computed facts are still cached (analysis
    // is engine-independent) and reused by a second no-chaining run
    let cache = open_cache(&dir, &m, c);
    assert!(cache.borrow().has_facts(), "facts persist even without chaining");
    let warm = run(&m, &[], c, Some(&cache));
    assert_identical(&reference, &warm, "no-chaining facts-warmed run");
    // enabled is still reported — the summary shows an idle cache rather
    // than silently hiding that one was attached
    assert_summary_shape(&cached, true, "no-chaining cached run");
    let _ = fs::remove_dir_all(&dir);
}

/// Mini-LULESH, the paper's macro workload: a second run over the same
/// cache must skip ≥90% of compilations and reproduce the report
/// byte-for-byte (ISSUE 7 acceptance criterion).
#[test]
fn lulesh_warm_run_skips_compilations_and_matches() {
    let m = guest_rt::build_single("lulesh.c", LULESH_MC).expect("compiles");
    let params =
        LuleshParams { s: 4, tel: 2, tnl: 2, iters: 2, progress: false, racy: false, threads: 2 };
    let args: Vec<String> = params.args();
    let args: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
    let c = Cfg { chaining: true, streaming: false, concurrency: true, threads: params.threads };
    let dir = temp_dir("lulesh");

    let reference = run(&m, &args, c, None);
    let cache = open_cache(&dir, &m, c);
    let cold = run(&m, &args, c, Some(&cache));
    assert_identical(&reference, &cold, "lulesh cold");
    let cold_translations = cold.run.metrics.translations;
    assert!(cold_translations > 0);

    let cache = open_cache(&dir, &m, c);
    let warm = run(&m, &args, c, Some(&cache));
    assert_identical(&reference, &warm, "lulesh warm");
    assert!(
        hit_rate(&warm) >= 0.9,
        "hit rate {:.3} below 0.9 ({:?})",
        hit_rate(&warm),
        warm.run.metrics.cache
    );
    assert!(
        warm.run.metrics.translations * 10 <= cold_translations,
        "warm run must skip >=90% of compilations: {} cold vs {} warm",
        cold_translations,
        warm.run.metrics.translations
    );
    let _ = fs::remove_dir_all(&dir);
}

/// `tgrind warm` (via its library entry point): statically precompiling
/// the CFG must give a first *run* that already hits the cache and
/// reports identically to the cache-less reference.
#[test]
fn static_warm_precompile_feeds_a_first_run() {
    let p = corpus().into_iter().find(|p| guest_rt::build_single(p.name, p.source).is_ok());
    let p = p.expect("corpus has buildable entries");
    let m = guest_rt::build_single(p.name, p.source).unwrap();
    let dir = temp_dir("warmcmd");
    let c = Cfg { chaining: true, streaming: false, concurrency: true, threads: 2 };

    let reference = run(&m, &[], c, None);
    {
        let cache = open_cache(&dir, &m, c);
        let record = RecordOptions { static_concurrency: c.concurrency, ..Default::default() };
        // Warm through the compile pool (2 workers): the cached run
        // below then doubles as a parallel-warm differential.
        let stats = tg_cli::warm::warm_module(&m, record, &mut cache.borrow_mut(), 2);
        assert!(stats.precompiled > 0, "warm must precompile blocks: {stats:?}");
        assert!(stats.facts_stored, "warm computes and stores the static facts");
        cache.borrow_mut().flush().expect("flush");
    }
    let cache = open_cache(&dir, &m, c);
    let first = run(&m, &[], c, Some(&cache));
    assert_identical(&reference, &first, "statically warmed first run");
    assert!(
        first.run.metrics.cache.hits > 0,
        "statically warmed run must hit: {:?}",
        first.run.metrics.cache
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Self-modifying code: the SMC store must evict the overlapping disk
/// entry, and the next run recompiles it — observed via `cache.misses`
/// and the entry's absence after the flush.
#[test]
fn smc_invalidates_disk_entries_and_recompiles() {
    // The guest reads its own first instruction word and writes it back
    // unchanged: semantically a no-op, but it dirties the code page.
    let src = r#"
int main(void) {
    long *code = (long *)65536; /* module code base */
    long w = *code;
    *code = w;
    return 7;
}
"#;
    let m = guest_rt::build_single("smc.c", src).expect("compiles");
    assert_eq!(m.code_base, 65536, "test assumes the default code base");
    let dir = temp_dir("smc");
    let key = (module_hash(&m), 0u64);

    let run_vm = |cache: Option<&Rc<RefCell<DiskCodeCache>>>| {
        let mut vm = Vm::new(m.clone(), Box::new(grindcore::tool::NulTool), VmConfig::default());
        if let Some(rc) = cache {
            vm.set_code_cache(CodeCacheHandle::new(rc.clone()));
        }
        let r = vm.run(ExecMode::Dbi, &[]);
        if let Some(rc) = cache {
            rc.borrow_mut().flush().expect("flush");
        }
        r
    };

    let cache = Rc::new(RefCell::new(DiskCodeCache::open(&dir, key.0, key.1).unwrap()));
    let r1 = run_vm(Some(&cache));
    assert!(r1.ok(), "{:?}", r1.error);
    assert_eq!(r1.exit_code, Some(7));
    assert!(r1.metrics.dispatch.discarded_blocks > 0, "SMC store must discard");
    assert!(r1.metrics.cache.invalidations > 0, "SMC must reach the disk cache");
    let stored_after_smc = {
        let c = cache.borrow();
        assert!(!c.contains(m.code_base), "overwritten entry must be evicted from disk");
        c.len()
    };
    drop(cache);

    let cache = Rc::new(RefCell::new(DiskCodeCache::open(&dir, key.0, key.1).unwrap()));
    assert_eq!(cache.borrow().len(), stored_after_smc, "eviction persisted to disk");
    let r2 = run_vm(Some(&cache));
    assert_eq!(r2.exit_code, Some(7));
    assert_eq!(r2.metrics.instrs, r1.metrics.instrs, "SMC run must replay identically");
    // the invalidated block is recompiled: published as cache.misses
    let mut reg = tg_obs::Registry::new();
    r2.metrics.publish(&mut reg);
    assert!(reg.bool("cache.enabled"));
    assert!(reg.u64("cache.misses") > 0, "invalidated entries must recompile");
    assert!(reg.u64("cache.hits") > 0, "surviving entries must still hit");
    let _ = fs::remove_dir_all(&dir);
}
