//! Differential tests for the tool-side hot-path rewrites: the
//! sweep-based candidate generator (`--no-sweep` reference: the
//! all-pairs loop), bulk access ingestion (`TG_NO_BULK` reference:
//! one interval-tree insert per access), and the streaming segment-
//! retirement engine (`--streaming`; reference: the batch pipeline).
//! All of them must be invisible in every verdict-bearing output:
//! candidate list, raw-range and suppression counters, and the rendered
//! report text must be bit-identical across the Table I corpus and
//! mini-LULESH, under both dispatch engines (`--no-chaining` included).
//!
//! `pairs_checked` / `unordered_pairs` are deliberately NOT compared:
//! they are work metrics of the pair generator (the sweep's whole point
//! is to check fewer pairs; the streaming engine re-examines live
//! context segments across epochs), not verdicts.

use taskgrind::tool::RecordOptions;
use taskgrind::{check_module, TaskgrindConfig, TaskgrindResult};
use tg_drb::corpus::{corpus, Suite};
use tg_lulesh::harness::LuleshParams;
use tg_lulesh::LULESH_MC;

/// One engine combination under test.
#[derive(Clone, Copy)]
struct Engine {
    label: &'static str,
    sweep: bool,
    bulk: bool,
    streaming: bool,
    threads: usize,
    /// Background compile workers (0 = synchronous translation).
    compile_threads: usize,
}

const REFERENCE: Engine = Engine {
    label: "reference",
    sweep: false,
    bulk: false,
    streaming: false,
    threads: 1,
    compile_threads: 0,
};

const SYNC: Engine = Engine { label: "", ..REFERENCE };

const ENGINES: &[Engine] = &[
    Engine { label: "sweep+bulk t1", sweep: true, bulk: true, threads: 1, ..SYNC },
    Engine { label: "sweep+bulk t4", sweep: true, bulk: true, threads: 4, ..SYNC },
    Engine { label: "sweep only", sweep: true, bulk: false, threads: 2, ..SYNC },
    Engine { label: "bulk only", sweep: false, bulk: true, threads: 1, ..SYNC },
    Engine { label: "streaming t1", sweep: true, bulk: true, streaming: true, threads: 1, ..SYNC },
    Engine { label: "streaming t4", sweep: true, bulk: true, streaming: true, threads: 4, ..SYNC },
    Engine { label: "async-compile t1", sweep: true, bulk: true, compile_threads: 1, ..SYNC },
    Engine { label: "async-compile t4", sweep: true, bulk: true, compile_threads: 4, ..SYNC },
    Engine {
        label: "async-compile t4 + streaming",
        sweep: true,
        bulk: true,
        streaming: true,
        threads: 4,
        compile_threads: 4,
    },
];

fn run(
    m: &tga::module::Module,
    args: &[&str],
    nt: u64,
    chaining: bool,
    e: Engine,
) -> TaskgrindResult {
    let cfg = TaskgrindConfig {
        vm: grindcore::VmConfig {
            nthreads: nt,
            chaining,
            compile_threads: e.compile_threads,
            ..Default::default()
        },
        record: RecordOptions { bulk_ingest: e.bulk, ..Default::default() },
        analysis_threads: e.threads,
        sweep: e.sweep,
        streaming: e.streaming,
        ..Default::default()
    };
    check_module(m, args, &cfg)
}

/// Everything verdict-bearing must match the reference bit for bit.
fn assert_identical(a: &TaskgrindResult, b: &TaskgrindResult, ctx: &str) {
    assert_eq!(a.analysis.candidates, b.analysis.candidates, "{ctx}: candidates");
    assert_eq!(a.analysis.raw_ranges, b.analysis.raw_ranges, "{ctx}: raw_ranges");
    assert_eq!(a.analysis.suppressed_locks, b.analysis.suppressed_locks, "{ctx}: locks");
    assert_eq!(a.analysis.suppressed_mutex, b.analysis.suppressed_mutex, "{ctx}: mutex");
    assert_eq!(a.analysis.suppressed_tls, b.analysis.suppressed_tls, "{ctx}: tls");
    assert_eq!(a.analysis.suppressed_stack, b.analysis.suppressed_stack, "{ctx}: stack");
    assert_eq!(a.analysis.suppressed_static, b.analysis.suppressed_static, "{ctx}: static");
    assert_eq!(a.accesses_recorded, b.accesses_recorded, "{ctx}: accesses recorded");
    assert_eq!(a.n_reports(), b.n_reports(), "{ctx}: report count");
    assert_eq!(a.render_all(), b.render_all(), "{ctx}: report text");
    // The registry-rendered summary block must have the merged shape for
    // every engine: exactly one `== analysis:` line (the historical
    // engine/pairs and streaming lines are one block now) and four `==`
    // lines total — plus one `== compile:` line iff background compile
    // workers ran.
    for r in [a, b] {
        let mut reg = tg_obs::Registry::new();
        taskgrind::metrics::publish(r, &mut reg);
        let s = taskgrind::metrics::render_summary(&reg);
        assert_eq!(s.matches("== analysis:").count(), 1, "{ctx}: merged analysis line\n{s}");
        let compile_lines = usize::from(r.run.metrics.compile.workers > 0);
        assert_eq!(s.matches("== compile:").count(), compile_lines, "{ctx}: compile line\n{s}");
        assert_eq!(s.matches("== ").count(), 4 + compile_lines, "{ctx}: summary line count\n{s}");
        assert!(
            s.contains(&format!("engine {}", r.analysis_engine)),
            "{ctx}: summary names the analysis engine\n{s}"
        );
    }
}

/// Sweep, bulk ingestion and streaming retirement preserve every
/// Table I verdict and counter, chaining on and off.
#[test]
fn sweep_and_bulk_preserve_table1_verdicts() {
    let mut any_candidates = false;
    for p in corpus() {
        let Ok(m) = guest_rt::build_single(p.name, p.source) else {
            continue; // ncs entries stay ncs either way
        };
        let threads: &[u64] = match p.suite {
            Suite::Drb => &[4],
            Suite::Tmb => &[1, 4],
        };
        for &nt in threads {
            for chaining in [true, false] {
                let reference = run(&m, &[], nt, chaining, REFERENCE);
                any_candidates |= !reference.analysis.candidates.is_empty();
                for &e in ENGINES {
                    let opt = run(&m, &[], nt, chaining, e);
                    let ctx =
                        format!("{} ({nt} threads, chaining={chaining}) under {}", p.name, e.label);
                    assert_identical(&reference, &opt, &ctx);
                }
            }
        }
    }
    assert!(any_candidates, "the corpus must exercise non-empty candidate sets");
}

/// Same contract on mini-LULESH — the many-segment workload the sweep
/// and streaming engines exist for, with deep interval sets feeding
/// bulk ingestion. Also asserts the streaming engine's reason to exist:
/// its tool-structure high-water mark stays below the batch engine's.
#[test]
fn sweep_and_bulk_preserve_lulesh_output() {
    let m = guest_rt::build_single("lulesh.c", LULESH_MC).expect("compiles");
    let params =
        LuleshParams { s: 4, tel: 2, tnl: 2, iters: 2, progress: false, racy: false, threads: 2 };
    let args: Vec<String> = params.args();
    let args: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
    for chaining in [true, false] {
        let reference = run(&m, &args, params.threads, chaining, REFERENCE);
        assert!(
            reference.analysis.raw_ranges > 0 || reference.analysis.pairs_checked > 0,
            "mini-LULESH must exercise the analysis"
        );
        for &e in ENGINES {
            let opt = run(&m, &args, params.threads, chaining, e);
            let ctx = format!("lulesh (chaining={chaining}) under {}", e.label);
            assert_identical(&reference, &opt, &ctx);
            if e.compile_threads > 0 && chaining {
                let c = opt.run.metrics.compile;
                assert!(c.workers > 0, "{ctx}: compile workers must spawn");
                assert_eq!(
                    c.queued + c.inline_compiles,
                    opt.run.metrics.translations,
                    "{ctx}: every translation goes through the pool or inline"
                );
            }
            if e.streaming {
                assert!(
                    opt.retired_segments > 0,
                    "{ctx}: streaming must retire segments before finalize"
                );
                assert!(
                    opt.peak_tool_bytes < reference.peak_tool_bytes,
                    "{ctx}: streaming high-water {} must stay below batch {}",
                    opt.peak_tool_bytes,
                    reference.peak_tool_bytes,
                );
            }
        }
    }
}

/// Run with the static concurrency pass (guard-mask tagging + the
/// StaticProof sweep layer) toggled.
fn run_concurrency(
    m: &tga::module::Module,
    args: &[&str],
    nt: u64,
    chaining: bool,
    streaming: bool,
    concurrency: bool,
) -> TaskgrindResult {
    let cfg = TaskgrindConfig {
        vm: grindcore::VmConfig { nthreads: nt, chaining, ..Default::default() },
        record: RecordOptions { static_concurrency: concurrency, ..Default::default() },
        suppress: taskgrind::analysis::SuppressOptions {
            static_proof: concurrency,
            ..Default::default()
        },
        analysis_threads: 2,
        sweep: true,
        streaming,
        ..Default::default()
    };
    check_module(m, args, &cfg)
}

/// The static concurrency pass must be *verdict-invisible*: a sound
/// static guard proof only tags accesses that run under a dynamic
/// critical section, so the locks layer claims every such pair first
/// and all Table I verdicts, counters, and report text stay
/// bit-identical with the pass on and off — across batch/streaming and
/// both dispatch engines.
#[test]
fn static_concurrency_is_verdict_invisible_on_table1() {
    for p in corpus() {
        let Ok(m) = guest_rt::build_single(p.name, p.source) else {
            continue;
        };
        for chaining in [true, false] {
            for streaming in [false, true] {
                let on = run_concurrency(&m, &[], 4, chaining, streaming, true);
                let off = run_concurrency(&m, &[], 4, chaining, streaming, false);
                let ctx = format!(
                    "{} (chaining={chaining}, streaming={streaming}) concurrency on vs off",
                    p.name
                );
                assert_identical(&on, &off, &ctx);
                assert_eq!(
                    on.analysis.suppressed_static, 0,
                    "{ctx}: dynamic lock tracking must subsume every static proof"
                );
            }
        }
    }
}

/// Same on mini-LULESH.
#[test]
fn static_concurrency_is_verdict_invisible_on_lulesh() {
    let m = guest_rt::build_single("lulesh.c", LULESH_MC).expect("compiles");
    let params =
        LuleshParams { s: 4, tel: 2, tnl: 2, iters: 1, progress: false, racy: false, threads: 2 };
    let args: Vec<String> = params.args();
    let args: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
    for chaining in [true, false] {
        for streaming in [false, true] {
            let on = run_concurrency(&m, &args, params.threads, chaining, streaming, true);
            let off = run_concurrency(&m, &args, params.threads, chaining, streaming, false);
            let ctx = format!("lulesh (chaining={chaining}, streaming={streaming})");
            assert_identical(&on, &off, &ctx);
            // the toggle gates only tagging, never pruning: the
            // instrumented-site counts stay identical too
            assert_eq!(on.sites_pruned, off.sites_pruned, "{ctx}: sites pruned");
            assert_eq!(on.sites_instrumented, off.sites_instrumented, "{ctx}: sites kept");
        }
    }
}

/// Streaming backpressure: a tiny `max_live_segments` bound must not
/// change any verdict, only add throttle waits.
#[test]
fn streaming_backpressure_preserves_verdicts() {
    let m = guest_rt::build_single("lulesh.c", LULESH_MC).expect("compiles");
    let params =
        LuleshParams { s: 4, tel: 2, tnl: 2, iters: 1, progress: false, racy: false, threads: 2 };
    let args: Vec<String> = params.args();
    let args: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
    let reference = run(&m, &args, params.threads, true, REFERENCE);
    let cfg = TaskgrindConfig {
        vm: grindcore::VmConfig { nthreads: params.threads, ..Default::default() },
        analysis_threads: 2,
        streaming: true,
        max_live_segments: 4,
        ..Default::default()
    };
    let throttled = check_module(&m, &args, &cfg);
    assert_identical(&reference, &throttled, "lulesh under streaming max-live=4");
}

mod random_graphs {
    //! Property test: the streaming engine is verdict-identical to the
    //! batch sweep on *random task graphs with random sync placement*,
    //! driving the [`taskgrind::graph::GraphBuilder`] event API directly
    //! (no guest program), with retirement attempted after every
    //! segment-closing event — far more epoch boundaries than real
    //! executions produce.

    use proptest::prelude::*;
    use taskgrind::analysis::{self, SuppressOptions};
    use taskgrind::graph::{GraphBuilder, ThreadMeta};
    use taskgrind::reach::Reachability;
    use taskgrind::stream::{InlineSink, Pipeline};

    /// One random event. Free-threaded ops run on thread 0 (the only
    /// thread with a root context, as in the real runtimes — worker
    /// threads only execute inside task contexts); explicit tasks run
    /// on thread 1, implicit tasks alternate threads.
    #[derive(Clone, Debug)]
    enum Op {
        Spawn,
        RunTask { write: bool, addr: u8 },
        Access { write: bool, addr: u8 },
        Taskwait,
        Critical { addr: u8 },
        TaskgroupScope,
        Region { team: u8 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            Just(Op::Spawn),
            (any::<bool>(), 0u8..32).prop_map(|(write, addr)| Op::RunTask { write, addr }),
            (any::<bool>(), 0u8..32).prop_map(|(write, addr)| Op::Access { write, addr }),
            Just(Op::Taskwait),
            (0u8..4).prop_map(|addr| Op::Critical { addr }),
            Just(Op::TaskgroupScope),
            (2u8..4).prop_map(|team| Op::Region { team }),
        ]
    }

    fn meta(tid: u8) -> ThreadMeta {
        ThreadMeta {
            tid: tid as usize,
            sp: 0x7000_0000,
            stack_low: 0x6000_0000,
            stack_high: 0x7000_0100,
            tls_base: 0x100 + tid as u64 * 0x1000,
            tls_size: 64,
            tls_gen: tid as u64,
        }
    }

    /// Replay the op list into a builder. Heap addresses are far from
    /// the fake stack/TLS windows so suppression layers stay exercised
    /// but not total.
    fn replay(b: &mut GraphBuilder, ops: &[Op], retire_hook: &mut dyn FnMut(&mut GraphBuilder)) {
        let mut pending: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Op::Spawn => {
                    let m = meta(0);
                    let t = b.task_create(&m, 0, 0x100);
                    b.task_spawn(&m, t);
                    pending.push(t);
                }
                Op::RunTask { write, addr } => {
                    // run the oldest pending task on thread 1
                    if !pending.is_empty() {
                        let t = pending.remove(0);
                        let m = meta(1);
                        b.task_begin(&m, t);
                        b.record_access(&m, 0x9000 + *addr as u64 * 8, 8, *write);
                        b.task_end(&m, t);
                        retire_hook(b);
                    }
                }
                Op::Access { write, addr } => {
                    b.record_access(&meta(0), 0x9000 + *addr as u64 * 8, 8, *write);
                }
                Op::Taskwait => {
                    b.taskwait(&meta(0));
                    retire_hook(b);
                }
                Op::Critical { addr } => {
                    let m = meta(0);
                    b.critical_enter(&m, 0x40 + *addr as u64);
                    b.record_access(&m, 0x9000 + *addr as u64 * 8, 8, true);
                    b.critical_exit(&m, 0x40 + *addr as u64);
                    retire_hook(b);
                }
                Op::TaskgroupScope => {
                    let m = meta(0);
                    b.taskgroup_begin(&m);
                    let t = b.task_create(&m, 0, 0x200);
                    b.task_spawn(&m, t);
                    b.task_begin(&m, t);
                    b.record_access(&m, 0x9100, 8, true);
                    b.task_end(&m, t);
                    b.taskgroup_end(&m);
                    retire_hook(b);
                }
                Op::Region { team } => {
                    let m0 = meta(0);
                    let rid = b.parallel_begin(&m0, *team as u64);
                    for i in 0..*team {
                        let mt = meta(i % 2);
                        b.implicit_task_begin(&mt, rid, i as u64);
                        b.record_access(&mt, 0x9200 + i as u64 * 8, 8, true);
                        b.barrier(&mt, rid);
                        retire_hook(b);
                        b.record_access(&mt, 0x9200 + i as u64 * 8, 8, false);
                        b.implicit_task_end(&mt, rid, i as u64);
                        retire_hook(b);
                    }
                    b.parallel_end(&m0, rid);
                    retire_hook(b);
                }
            }
        }
        // leave no task unrun: the batch reference joins them at finalize
        for t in pending {
            let m = meta(1);
            b.task_begin(&m, t);
            b.record_access(&m, 0x9300, 8, true);
            b.task_end(&m, t);
            retire_hook(b);
        }
    }

    fn batch_verdicts(ops: &[Op]) -> analysis::AnalysisOutput {
        let mut b = GraphBuilder::new();
        replay(&mut b, ops, &mut |_| {});
        let g = b.finalize();
        let reach = Reachability::compute(&g);
        analysis::run_sweep(&g, &reach, &SuppressOptions::default(), 1)
    }

    fn assert_verdicts_match(a: &analysis::AnalysisOutput, b: &analysis::AnalysisOutput) {
        assert_eq!(a.candidates, b.candidates, "candidates");
        assert_eq!(a.raw_ranges, b.raw_ranges, "raw_ranges");
        assert_eq!(a.suppressed_locks, b.suppressed_locks, "locks");
        assert_eq!(a.suppressed_mutex, b.suppressed_mutex, "mutex");
        assert_eq!(a.suppressed_tls, b.suppressed_tls, "tls");
        assert_eq!(a.suppressed_stack, b.suppressed_stack, "stack");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Streaming == batch on random graphs, analyzed inline
        /// (deterministic single-thread reference sink).
        #[test]
        fn streaming_matches_batch_inline(ops in prop::collection::vec(op_strategy(), 1..40)) {
            let batch = batch_verdicts(&ops);

            let (sink, out) = InlineSink::new(SuppressOptions::default());
            let mut b = GraphBuilder::new();
            b.enable_streaming(Box::new(sink), 0);
            replay(&mut b, &ops, &mut |b| b.maybe_retire());
            let (_, stats) = b.finalize_with_stats();
            let streamed = InlineSink::take(&out);
            assert_verdicts_match(&batch, &streamed);
            prop_assert_eq!(stats.late_root_ctxs, 0, "frontier soundness precondition");
        }

        /// Streaming == batch with the real 4-worker background pool.
        #[test]
        fn streaming_matches_batch_pooled(ops in prop::collection::vec(op_strategy(), 1..40)) {
            let batch = batch_verdicts(&ops);

            let pipeline = Pipeline::new(4, SuppressOptions::default());
            let mut b = GraphBuilder::new();
            b.enable_streaming(Box::new(pipeline.sink()), 2);
            replay(&mut b, &ops, &mut |b| b.maybe_retire());
            let _ = b.finalize_with_stats();
            let streamed = pipeline.finish();
            assert_verdicts_match(&batch, &streamed);
        }
    }
}
