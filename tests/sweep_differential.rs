//! Differential tests for the two tool-side hot-path rewrites: the
//! sweep-based candidate generator (`--no-sweep` reference: the
//! all-pairs loop) and bulk access ingestion (`TG_NO_BULK` reference:
//! one interval-tree insert per access). Both optimizations must be
//! invisible in every verdict-bearing output: candidate list, raw-range
//! and suppression counters, and the rendered report text must be
//! bit-identical across the Table I corpus and mini-LULESH, under both
//! dispatch engines (`--no-chaining` included).
//!
//! `pairs_checked` / `unordered_pairs` are deliberately NOT compared:
//! they are work metrics of the pair generator (the sweep's whole point
//! is to check fewer pairs), not verdicts.

use taskgrind::tool::RecordOptions;
use taskgrind::{check_module, TaskgrindConfig, TaskgrindResult};
use tg_drb::corpus::{corpus, Suite};
use tg_lulesh::harness::LuleshParams;
use tg_lulesh::LULESH_MC;

/// One engine combination under test.
#[derive(Clone, Copy)]
struct Engine {
    label: &'static str,
    sweep: bool,
    bulk: bool,
    threads: usize,
}

const REFERENCE: Engine = Engine { label: "reference", sweep: false, bulk: false, threads: 1 };

const ENGINES: &[Engine] = &[
    Engine { label: "sweep+bulk t1", sweep: true, bulk: true, threads: 1 },
    Engine { label: "sweep+bulk t4", sweep: true, bulk: true, threads: 4 },
    Engine { label: "sweep only", sweep: true, bulk: false, threads: 2 },
    Engine { label: "bulk only", sweep: false, bulk: true, threads: 1 },
];

fn run(
    m: &tga::module::Module,
    args: &[&str],
    nt: u64,
    chaining: bool,
    e: Engine,
) -> TaskgrindResult {
    let cfg = TaskgrindConfig {
        vm: grindcore::VmConfig { nthreads: nt, chaining, ..Default::default() },
        record: RecordOptions { bulk_ingest: e.bulk, ..Default::default() },
        analysis_threads: e.threads,
        sweep: e.sweep,
        ..Default::default()
    };
    check_module(m, args, &cfg)
}

/// Everything verdict-bearing must match the reference bit for bit.
fn assert_identical(a: &TaskgrindResult, b: &TaskgrindResult, ctx: &str) {
    assert_eq!(a.analysis.candidates, b.analysis.candidates, "{ctx}: candidates");
    assert_eq!(a.analysis.raw_ranges, b.analysis.raw_ranges, "{ctx}: raw_ranges");
    assert_eq!(a.analysis.suppressed_locks, b.analysis.suppressed_locks, "{ctx}: locks");
    assert_eq!(a.analysis.suppressed_mutex, b.analysis.suppressed_mutex, "{ctx}: mutex");
    assert_eq!(a.analysis.suppressed_tls, b.analysis.suppressed_tls, "{ctx}: tls");
    assert_eq!(a.analysis.suppressed_stack, b.analysis.suppressed_stack, "{ctx}: stack");
    assert_eq!(a.accesses_recorded, b.accesses_recorded, "{ctx}: accesses recorded");
    assert_eq!(a.n_reports(), b.n_reports(), "{ctx}: report count");
    assert_eq!(a.render_all(), b.render_all(), "{ctx}: report text");
}

/// Sweep and bulk ingestion preserve every Table I verdict and counter,
/// chaining on and off.
#[test]
fn sweep_and_bulk_preserve_table1_verdicts() {
    let mut any_candidates = false;
    for p in corpus() {
        let Ok(m) = guest_rt::build_single(p.name, p.source) else {
            continue; // ncs entries stay ncs either way
        };
        let threads: &[u64] = match p.suite {
            Suite::Drb => &[4],
            Suite::Tmb => &[1, 4],
        };
        for &nt in threads {
            for chaining in [true, false] {
                let reference = run(&m, &[], nt, chaining, REFERENCE);
                any_candidates |= !reference.analysis.candidates.is_empty();
                for &e in ENGINES {
                    let opt = run(&m, &[], nt, chaining, e);
                    let ctx =
                        format!("{} ({nt} threads, chaining={chaining}) under {}", p.name, e.label);
                    assert_identical(&reference, &opt, &ctx);
                }
            }
        }
    }
    assert!(any_candidates, "the corpus must exercise non-empty candidate sets");
}

/// Same contract on mini-LULESH — the many-segment workload the sweep
/// exists for, with deep interval sets feeding bulk ingestion.
#[test]
fn sweep_and_bulk_preserve_lulesh_output() {
    let m = guest_rt::build_single("lulesh.c", LULESH_MC).expect("compiles");
    let params =
        LuleshParams { s: 4, tel: 2, tnl: 2, iters: 2, progress: false, racy: false, threads: 2 };
    let args: Vec<String> = params.args();
    let args: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
    for chaining in [true, false] {
        let reference = run(&m, &args, params.threads, chaining, REFERENCE);
        assert!(
            reference.analysis.raw_ranges > 0 || reference.analysis.pairs_checked > 0,
            "mini-LULESH must exercise the analysis"
        );
        for &e in ENGINES {
            let opt = run(&m, &args, params.threads, chaining, e);
            let ctx = format!("lulesh (chaining={chaining}) under {}", e.label);
            assert_identical(&reference, &opt, &ctx);
        }
    }
}
