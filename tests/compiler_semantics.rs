//! Execution-level semantics tests for the minicc compiler: every
//! operator, control-flow construct and library routine, checked by
//! running compiled programs on the VM (both interpreters agree per the
//! differential suite; these pin down the *values*).

use grindcore::tool::NulTool;
use grindcore::{ExecMode, RunResult, Vm, VmConfig};

fn run(src: &str) -> RunResult {
    let m = guest_rt::build_single("sem.c", src).expect("compiles");
    Vm::new(m, Box::new(NulTool), VmConfig::default()).run(ExecMode::Fast, &[])
}

fn exit_of(src: &str) -> i64 {
    let r = run(src);
    assert!(r.ok(), "{:?}", r.error);
    r.exit_code.expect("program exits")
}

fn stdout_of(src: &str) -> String {
    let r = run(src);
    assert!(r.ok(), "{:?}", r.error);
    r.stdout_str()
}

#[test]
fn integer_arithmetic() {
    assert_eq!(exit_of("int main(void){ return 7 + 3 * 4 - 5; }"), 14);
    assert_eq!(exit_of("int main(void){ return (7 + 3) * 4 % 9; }"), 4);
    assert_eq!(exit_of("int main(void){ return 100 / 7; }"), 14);
    assert_eq!(exit_of("int main(void){ return -(-5); }"), 5);
    assert_eq!(exit_of("int main(void){ return 1 << 6; }"), 64);
    assert_eq!(exit_of("int main(void){ return 255 >> 4; }"), 15);
    assert_eq!(exit_of("int main(void){ return (12 & 10) + (12 | 10) + (12 ^ 10); }"), 28);
    assert_eq!(exit_of("int main(void){ return ~0 & 255; }"), 255);
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(exit_of("int main(void){ return (3 < 5) + (5 <= 5) + (7 > 2) + (2 >= 3); }"), 3);
    assert_eq!(exit_of("int main(void){ return (4 == 4) + (4 != 4); }"), 1);
    assert_eq!(exit_of("int main(void){ return !0 + !7; }"), 1);
    assert_eq!(exit_of("int main(void){ return (1 && 2) + (0 && 9) + (0 || 3) + (0 || 0); }"), 2);
}

#[test]
fn short_circuit_side_effects() {
    let src = r#"
int calls;
int bump(void) { calls = calls + 1; return 1; }
int main(void) {
    int a = 0 && bump();   // bump not called
    int b = 1 || bump();   // bump not called
    int c = 1 && bump();   // called
    int d = 0 || bump();   // called
    return calls * 10 + a + b + c + d;
}
"#;
    assert_eq!(exit_of(src), 23);
}

#[test]
fn ternary_incdec_compound() {
    assert_eq!(exit_of("int main(void){ int x = 5; return x > 3 ? 10 : 20; }"), 10);
    assert_eq!(
        exit_of(
            "int main(void){ int x = 5; int a = x++; int b = ++x; return a * 100 + b * 10 + x; }"
        ),
        577
    );
    assert_eq!(
        exit_of(
            "int main(void){ int x = 5; int a = x--; int b = --x; return a * 100 + b * 10 + x; }"
        ),
        533
    );
    assert_eq!(
        exit_of("int main(void){ int x = 4; x += 3; x -= 1; x *= 2; x /= 3; return x; }"),
        4
    );
}

#[test]
fn control_flow() {
    assert_eq!(
        exit_of("int main(void){ int s = 0; for (int i = 1; i <= 10; i++) s += i; return s; }"),
        55
    );
    assert_eq!(
        exit_of("int main(void){ int s = 0; int i = 0; while (i < 5) { i++; if (i == 3) continue; s += i; } return s; }"),
        12
    );
    assert_eq!(
        exit_of("int main(void){ int s = 0; for (int i = 0; i < 100; i++) { if (i == 7) break; s += 1; } return s; }"),
        7
    );
    assert_eq!(
        exit_of("int main(void){ int n = 0; for (int i = 0; i < 3; i++) for (int j = 0; j < 4; j++) n++; return n; }"),
        12
    );
}

#[test]
fn functions_and_recursion() {
    assert_eq!(
        exit_of("int f(int a, int b, int c) { return a * 100 + b * 10 + c; } int main(void){ return f(1, 2, 3); }"),
        123
    );
    assert_eq!(
        exit_of("int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); } int main(void){ return fact(6) & 255; }"),
        208 // 720 & 255
    );
    assert_eq!(
        exit_of("int even(int n); int odd(int n) { if (n == 0) return 0; return even(n - 1); } int even(int n) { if (n == 0) return 1; return odd(n - 1); } int main(void){ return even(10) * 10 + odd(7); }"),
        11
    );
}

#[test]
fn pointers_and_arrays() {
    assert_eq!(
        exit_of("int main(void){ int a[5]; for (int i = 0; i < 5; i++) a[i] = i * i; return a[4] + a[3]; }"),
        25
    );
    assert_eq!(exit_of("int main(void){ int x = 1; int *p = &x; *p = 42; return x; }"), 42);
    assert_eq!(
        exit_of("int main(void){ int a[4]; a[0]=10; a[1]=20; a[2]=30; a[3]=40; int *p = a; p = p + 2; return *p + p[-1]; }"),
        50
    );
    assert_eq!(
        exit_of("int main(void){ int a[8]; int *p = &a[1]; int *q = &a[6]; return q - p; }"),
        5
    );
    assert_eq!(
        exit_of("int swap(int *a, int *b) { int t = *a; *a = *b; *b = t; return 0; } int main(void){ int x = 3; int y = 9; swap(&x, &y); return x * 10 + y; }"),
        93
    );
}

#[test]
fn chars_and_strings() {
    assert_eq!(exit_of("int main(void){ char c = 'A'; return c + 2; }"), 67);
    assert_eq!(
        exit_of(r#"int main(void){ char *s = "hello"; return strlen(s) * 10 + (s[1] == 'e'); }"#),
        51
    );
    assert_eq!(exit_of(r#"int main(void){ return strcmp("abc", "abc") == 0 ? 1 : 0; }"#), 1);
    assert_eq!(exit_of(r#"int main(void){ return strcmp("abd", "abc") > 0 ? 1 : 0; }"#), 1);
    assert_eq!(exit_of(r#"int main(void){ return atoi("-321") + 421; }"#), 100);
    assert_eq!(
        exit_of("int main(void){ char buf[8]; memset(buf, 7, 8); return buf[0] + buf[7]; }"),
        14
    );
    assert_eq!(
        exit_of(
            r#"int main(void){ char d[8]; memcpy(d, "xy", 3); return d[0] == 'x' && d[1] == 'y' && d[2] == 0; }"#
        ),
        1
    );
}

#[test]
fn doubles() {
    assert_eq!(exit_of("int main(void){ double d = 1.5 + 2.25; return (int) (d * 4.0); }"), 15);
    assert_eq!(exit_of("int main(void){ double d = 10.0 / 4.0; return (int) (d * 2.0); }"), 5);
    assert_eq!(exit_of("int main(void){ return (int) sqrt(144.0); }"), 12);
    assert_eq!(exit_of("int main(void){ return (int) fabs(-7.5 * 2.0); }"), 15);
    assert_eq!(exit_of("int main(void){ double a = 0.1; double b = 0.2; return (a + b > 0.3 - 0.001) && (a + b < 0.3 + 0.001); }"), 1);
    // int/double mixing promotes
    assert_eq!(
        exit_of("int main(void){ double d = 3; int i = 2; return (int) (d / i * 10.0); }"),
        15
    );
    // comparisons
    assert_eq!(exit_of("int main(void){ double x = 2.5; return (x > 2.0) + (x < 3.0) + (x == 2.5) + (x != 2.5); }"), 3);
}

#[test]
fn globals_and_tls() {
    assert_eq!(exit_of("int g = 40; int h; int main(void){ h = 2; return g + h; }"), 42);
    assert_eq!(exit_of("double gd = 2.5; int main(void){ return (int)(gd * 4.0); }"), 10);
    assert_eq!(exit_of("_Thread_local int t = 9; int main(void){ t = t + 1; return t; }"), 10);
    assert_eq!(
        exit_of("int arr[10]; int main(void){ for (int i = 0; i < 10; i++) arr[i] = i; return arr[9]; }"),
        9
    );
}

#[test]
fn malloc_calloc_free() {
    assert_eq!(exit_of("int main(void){ long *p = (long*) calloc(4, 8); return p[0] + p[3]; }"), 0);
    assert_eq!(
        exit_of("int main(void){ int *p = (int*) malloc(64); p[7] = 13; free(p); int *q = (int*) malloc(64); return q == p; }"),
        1
    );
}

#[test]
fn printf_formats() {
    assert_eq!(
        stdout_of(r#"int main(void){ printf("%d|%5d|%x\n", 42, 1, 255); return 0; }"#),
        "42|1|ff\n"
    );
    assert_eq!(
        stdout_of(r#"int main(void){ printf("[%s][%c]", "ab", 'z'); return 0; }"#),
        "[ab][z]"
    );
    assert_eq!(stdout_of(r#"int main(void){ printf("%f", 0.5); return 0; }"#), "0.500000");
    assert_eq!(stdout_of(r#"int main(void){ printf("%f", -12.0625); return 0; }"#), "-12.062500");
    assert_eq!(stdout_of(r#"int main(void){ printf("%d%%\n", 9); return 0; }"#), "9%\n");
    assert_eq!(stdout_of(r#"int main(void){ puts("line"); putchar('x'); return 0; }"#), "line\nx");
}

#[test]
fn argv_handling() {
    let m = guest_rt::build_single(
        "argv.c",
        r#"int main(int argc, char **argv) {
            int sum = 0;
            for (int i = 1; i < argc; i++) sum += atoi(argv[i]);
            return sum;
        }"#,
    )
    .unwrap();
    let r =
        Vm::new(m, Box::new(NulTool), VmConfig::default()).run(ExecMode::Fast, &["10", "20", "12"]);
    assert_eq!(r.exit_code, Some(42));
}

#[test]
fn sizeof_and_casts() {
    assert_eq!(
        exit_of(
            "int main(void){ return sizeof(int) + sizeof(char) + sizeof(double) + sizeof(int*); }"
        ),
        25
    );
    assert_eq!(exit_of("int main(void){ double d = 9.99; return (int) d; }"), 9);
    assert_eq!(
        exit_of(
            "int main(void){ int i = 7; double d = (double) i / 2.0; return (int)(d * 10.0); }"
        ),
        35
    );
    assert_eq!(exit_of("int main(void){ long x = 300; char c = x; return c & 255; }"), 44);
}

#[test]
fn negative_division_semantics() {
    // C truncating division
    assert_eq!(exit_of("int main(void){ return -7 / 2 + 10; }"), 7);
    assert_eq!(exit_of("int main(void){ return -7 % 2 + 10; }"), 9);
    assert_eq!(exit_of("int main(void){ return 7 / -2 + 10; }"), 7);
}

#[test]
fn shadowing_and_scopes() {
    assert_eq!(
        exit_of("int main(void){ int x = 1; { int x = 2; { int x = 3; } x = x + 10; } return x; }"),
        1
    );
    assert_eq!(exit_of("int x = 100; int main(void){ int x = 5; return x; }"), 5);
}

#[test]
fn atomics_builtins() {
    assert_eq!(
        exit_of("long v; int main(void){ __fetch_add(&v, 5); long old = __fetch_add(&v, 2); return v * 10 + old; }"),
        75
    );
    assert_eq!(
        exit_of("long v = 3; int main(void){ long a = __cas(&v, 3, 9); long b = __cas(&v, 3, 11); return v * 100 + a * 10 + b; }"),
        939
    );
}

#[test]
fn division_by_zero_is_a_guest_fault() {
    let r = run("int main(void){ int z = 0; return 5 / z; }");
    assert!(r.error.is_some());
    assert!(r.error.unwrap().msg.contains("division"));
}

#[test]
fn compile_errors_are_located() {
    let e =
        guest_rt::build_single("bad.c", "int main(void){ return undeclared_var; }").unwrap_err();
    assert!(e.msg.contains("unknown variable"), "{e}");
    assert_eq!(e.line, 1);

    let e = guest_rt::build_single("bad.c", "int main(void){ nosuchfn(); return 0; }").unwrap_err();
    assert!(e.msg.contains("unknown function"), "{e}");

    let e = guest_rt::build_single("bad.c", "int main(void){ return 1 +; }").unwrap_err();
    assert!(e.msg.contains("unexpected"), "{e}");

    let e = guest_rt::build_single("bad.c", "int f(void){return 1;}").unwrap_err();
    assert!(e.msg.contains("main"), "{e}");
}

#[test]
fn line_info_reaches_reports() {
    // the debug pipeline end to end: a deliberately racy line number
    let src = "int g;\nint main(void) {\n#pragma omp parallel\n{\n#pragma omp single\n{\n#pragma omp task\ng = 1;\n#pragma omp task\ng = 2;\n}\n}\nreturn 0;\n}\n";
    let m = guest_rt::build_single("lines.c", src).unwrap();
    let cfg = taskgrind::TaskgrindConfig {
        vm: VmConfig { nthreads: 2, ..Default::default() },
        ..Default::default()
    };
    let r = taskgrind::check_module(&m, &[], &cfg);
    assert_eq!(r.n_reports(), 1);
    let rep = &r.reports[0];
    assert_eq!(rep.site1, "lines.c:7", "first task construct line");
    assert_eq!(rep.site2, "lines.c:9", "second task construct line");
}

#[test]
fn omp_locks_synchronize_and_suppress() {
    // omp_set_lock/omp_unset_lock: execution is mutually exclusive and
    // Taskgrind treats lock-protected conflicting accesses as ordered
    // "by mutual exclusion" (the Helgrind-style future-work item).
    let clean = r#"
long lock;
int sum;
int main(void) {
    omp_init_lock(&lock);
    #pragma omp parallel num_threads(4)
    {
        for (int i = 0; i < 50; i++) {
            omp_set_lock(&lock);
            sum = sum + 1;
            omp_unset_lock(&lock);
        }
    }
    omp_destroy_lock(&lock);
    return sum == 200;
}
"#;
    let m = guest_rt::build_single("locks.c", clean).unwrap();
    let vm = VmConfig { nthreads: 4, ..Default::default() };
    let r = Vm::new(m.clone(), Box::new(NulTool), vm.clone()).run(ExecMode::Fast, &[]);
    assert_eq!(r.exit_code, Some(1), "{:?}", r.error);

    let cfg = taskgrind::TaskgrindConfig { vm: vm.clone(), ..Default::default() };
    let tg = taskgrind::check_module(&m, &[], &cfg);
    assert!(tg.run.ok(), "{:?}", tg.run.error);
    assert_eq!(tg.n_reports(), 0, "lock-protected counter is clean: {}", tg.render_all());

    // two DIFFERENT locks do not synchronize: the race must be reported
    let racy = r#"
long l1;
long l2;
int sum;
int main(void) {
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single
        {
            #pragma omp task shared(sum)
            { omp_set_lock(&l1); sum = sum + 1; omp_unset_lock(&l1); }
            #pragma omp task shared(sum)
            { omp_set_lock(&l2); sum = sum + 1; omp_unset_lock(&l2); }
        }
    }
    return sum;
}
"#;
    let m = guest_rt::build_single("locks2.c", racy).unwrap();
    let cfg = taskgrind::TaskgrindConfig { vm, ..Default::default() };
    let tg = taskgrind::check_module(&m, &[], &cfg);
    assert!(tg.n_reports() > 0, "different locks do not order the tasks");
}

#[test]
fn omp_test_lock_works() {
    let src = r#"
long lock;
int main(void) {
    omp_init_lock(&lock);
    int got = omp_test_lock(&lock);      // acquires
    int again = omp_test_lock(&lock);    // fails: already held
    omp_unset_lock(&lock);
    int third = omp_test_lock(&lock);    // acquires again
    omp_unset_lock(&lock);
    return got * 100 + again * 10 + third;
}
"#;
    assert_eq!(exit_of(src), 101);
}

#[test]
fn detach_clause_runtime_semantics() {
    // taskwait must not return before the detached task's event is
    // fulfilled — the fulfiller's preceding writes are visible after it.
    let src = r#"
long evt;
int x;
int y;
int main(void) {
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single
        {
            #pragma omp task detach(evt) shared(x)
            x = 1;
            #pragma omp task shared(y)
            {
                y = 2;
                omp_fulfill_event(evt);
            }
            #pragma omp taskwait
            // both the detached body and the fulfiller completed here
            if (x == 1 && y == 2) x = 42;
        }
    }
    return x;
}
"#;
    for nt in [1u64, 2] {
        let m = guest_rt::build_single("detach.c", src).unwrap();
        let r = Vm::new(m, Box::new(NulTool), VmConfig { nthreads: nt, ..Default::default() })
            .run(ExecMode::Fast, &[]);
        assert!(r.ok(), "nt={nt}: {:?} deadlock={}", r.error, r.deadlock);
        assert_eq!(r.exit_code, Some(42), "nt={nt}");
    }
}

#[test]
fn detach_fulfill_is_a_happens_before_edge_for_taskgrind() {
    // the fulfiller's write to `y` is ordered before the post-taskwait
    // read through the TASK_FULFILL edge; Taskgrind (which supports
    // detach, unlike TaskSanitizer — paper III-A) reports no race.
    // The fulfiller is a *grandchild*: taskwait joins only direct
    // children, so the post-taskwait read of y is ordered with the
    // grandchild's write ONLY through the detached task's fulfill edge.
    let src = r#"
long evt;
int y;
int out;
int main(void) {
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single
        {
            #pragma omp task detach(evt)
            { int local = 5; }
            #pragma omp task
            {
                #pragma omp task shared(y)
                {
                    y = 2;                    // before the fulfill
                    omp_fulfill_event(evt);
                }
            }
            #pragma omp taskwait
            out = y;                      // ordered via fulfill edge
        }
    }
    return out;
}
"#;
    let m = guest_rt::build_single("detach2.c", src).unwrap();
    let vm = VmConfig { nthreads: 2, ..Default::default() };
    let cfg = taskgrind::TaskgrindConfig { vm: vm.clone(), ..Default::default() };
    let tg = taskgrind::check_module(&m, &[], &cfg);
    assert!(tg.run.ok(), "{:?}", tg.run.error);
    assert_eq!(tg.run.exit_code, Some(2));
    assert_eq!(tg.n_reports(), 0, "fulfill edge orders y: {}", tg.render_all());

    // TaskSanitizer has no detach support (paper): it misses the
    // fulfill edge and reports the y conflict as a race.
    let tsan = guest_rt::build_program_tsan(&[minicc::SourceFile::new("detach2.c", src)]).unwrap();
    let ts = tg_baselines::tasksan::run_tasksan(&tsan, &[], &vm);
    assert!(ts.run.ok());
    assert!(ts.found_race(), "TaskSanitizer lacks detach support and should FP here");
}
