//! Differential test for the static instrumentation filter: pruning
//! statically-proven thread-private / read-only accesses must not
//! change a single race verdict on the Table I corpus. This is the
//! soundness contract of `tga-analysis` — the filter may only drop
//! records that Algorithm 1 would have suppressed (same-thread stack
//! segments) or that cannot conflict at all (never-written globals).

use taskgrind::tool::RecordOptions;
use taskgrind::{check_module, TaskgrindConfig, TaskgrindResult};
use tg_drb::corpus::{corpus, Suite};

fn check(m: &tga::module::Module, nthreads: u64, static_filter: bool) -> TaskgrindResult {
    let cfg = TaskgrindConfig {
        vm: grindcore::VmConfig { nthreads, ..Default::default() },
        record: RecordOptions { static_filter, ..Default::default() },
        ..Default::default()
    };
    check_module(m, &[], &cfg)
}

#[test]
fn static_filter_preserves_all_table1_verdicts() {
    let mut pruned_total = 0u64;
    let mut recorded_on = 0u64;
    let mut recorded_off = 0u64;
    for p in corpus() {
        let Ok(m) = guest_rt::build_single(p.name, p.source) else {
            continue; // ncs entries stay ncs either way
        };
        let threads: &[u64] = match p.suite {
            Suite::Drb => &[4],
            Suite::Tmb => &[1, 4],
        };
        for &nt in threads {
            let with = check(&m, nt, true);
            let without = check(&m, nt, false);
            assert_eq!(
                with.run.deadlock, without.run.deadlock,
                "{} ({} threads): deadlock outcome changed",
                p.name, nt
            );
            assert_eq!(
                with.n_reports() > 0,
                without.n_reports() > 0,
                "{} ({} threads): race verdict changed by static filter\nwith:\n{}\nwithout:\n{}",
                p.name,
                nt,
                with.render_all(),
                without.render_all()
            );
            assert_eq!(
                with.n_reports(),
                without.n_reports(),
                "{} ({} threads): report count changed by static filter",
                p.name,
                nt
            );
            assert_eq!(without.sites_pruned, 0, "filter off must prune nothing");
            assert!(
                with.accesses_recorded <= without.accesses_recorded,
                "{} ({} threads): filter may only reduce recorded accesses",
                p.name,
                nt
            );
            pruned_total += with.sites_pruned;
            recorded_on += with.accesses_recorded;
            recorded_off += without.accesses_recorded;
        }
    }
    assert!(pruned_total > 0, "the filter must actually prune sites somewhere");
    assert!(
        recorded_on < recorded_off,
        "pruning must reduce dynamic records overall ({recorded_on} vs {recorded_off})"
    );
}
