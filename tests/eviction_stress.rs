//! Eviction and invalidation stress tests: run the Table II mini-LULESH
//! kernel with a translation cache small enough to force constant
//! eviction and unchaining, and check that nothing observable changes —
//! then exercise the `DISCARD_TRANSLATIONS` client request and the
//! self-modifying-code store path directly.

use grindcore::tool::NulTool;
use grindcore::{ExecMode, Vm, VmConfig};
use taskgrind::{check_module, TaskgrindConfig, TaskgrindResult};
use tg_lulesh::LULESH_MC;

fn lulesh_args() -> Vec<&'static str> {
    // A reduced Table II configuration, sized for a test.
    vec!["-s", "6", "-tel", "2", "-tnl", "2", "-i", "2", "-racy"]
}

fn check_lulesh(cache_blocks: usize) -> TaskgrindResult {
    check_lulesh_cfg(cache_blocks, 0, 0)
}

fn check_lulesh_cfg(
    cache_blocks: usize,
    compile_threads: usize,
    cache_shards: usize,
) -> TaskgrindResult {
    let cfg = TaskgrindConfig {
        vm: VmConfig {
            nthreads: 2,
            cache_blocks,
            compile_threads,
            cache_shards,
            ..Default::default()
        },
        ..Default::default()
    };
    let m = guest_rt::build_single("lulesh.c", LULESH_MC).expect("lulesh compiles");
    check_module(&m, &lulesh_args(), &cfg)
}

/// Constant eviction/unchaining churn must not change verdicts or
/// reports on the racy mini-LULESH run.
#[test]
fn tiny_cache_matches_default_capacity_on_lulesh() {
    let default = check_lulesh(4096);
    let tiny = check_lulesh(24);

    assert!(
        tiny.dispatch.evictions > 0,
        "a 24-block cache must thrash on LULESH (got {} evictions)",
        tiny.dispatch.evictions
    );
    assert!(tiny.dispatch.unchains > 0, "evicting chained blocks must unchain them");
    assert_eq!(default.dispatch.evictions, 0, "the default capacity must not thrash");

    assert_eq!(default.run.exit_code, tiny.run.exit_code);
    assert_eq!(default.run.deadlock, tiny.run.deadlock);
    assert_eq!(default.run.stdout, tiny.run.stdout);
    assert_eq!(default.run.metrics.instrs, tiny.run.metrics.instrs);
    assert_eq!(default.run.metrics.sched_digest, tiny.run.metrics.sched_digest);
    assert_eq!(default.accesses_recorded, tiny.accesses_recorded);
    assert!(default.n_reports() > 0, "the -racy seeded race must be found");
    assert_eq!(
        default.n_reports(),
        tiny.n_reports(),
        "report count changed under eviction pressure\ndefault:\n{}\ntiny:\n{}",
        default.render_all(),
        tiny.render_all()
    );
    // Same races at the same sites, not just the same count.
    let sites = |r: &TaskgrindResult| {
        let mut v: Vec<(String, String)> =
            r.reports.iter().map(|rep| (rep.site1.clone(), rep.site2.clone())).collect();
        v.sort();
        v
    };
    assert_eq!(sites(&default), sites(&tiny));

    // The bounded cache must actually bound resident translation bytes:
    // with eviction churn, resident bytes stay below the default run's.
    assert!(
        tiny.run.metrics.translation_bytes < default.run.metrics.translation_bytes,
        "tiny cache kept {} bytes resident vs {} at default capacity",
        tiny.run.metrics.translation_bytes,
        default.run.metrics.translation_bytes
    );
}

/// The same eviction churn with the cache sharded 4 ways and background
/// compile workers promoting blocks concurrently: verdicts, schedule
/// and access counts stay identical while per-shard clocks evict.
#[test]
fn sharded_async_tiny_cache_matches_default_on_lulesh() {
    let default = check_lulesh(4096);
    let tiny = check_lulesh_cfg(32, 2, 4);

    assert!(
        tiny.dispatch.evictions > 0,
        "a 32-block sharded cache must thrash on LULESH (got {} evictions)",
        tiny.dispatch.evictions
    );
    assert!(tiny.run.metrics.compile.workers > 0, "compile workers must spawn");
    assert_eq!(default.run.exit_code, tiny.run.exit_code);
    assert_eq!(default.run.deadlock, tiny.run.deadlock);
    assert_eq!(default.run.stdout, tiny.run.stdout);
    assert_eq!(default.run.metrics.instrs, tiny.run.metrics.instrs);
    assert_eq!(default.run.metrics.sched_digest, tiny.run.metrics.sched_digest);
    assert_eq!(default.accesses_recorded, tiny.accesses_recorded);
    assert_eq!(
        default.n_reports(),
        tiny.n_reports(),
        "report count changed under sharded eviction pressure\ndefault:\n{}\ntiny:\n{}",
        default.render_all(),
        tiny.render_all()
    );
    assert_eq!(default.render_all(), tiny.render_all());
}

/// `tg_discard_translations` must invalidate translations (forcing
/// retranslation) without changing what the program computes.
#[test]
fn discard_translations_request_forces_retranslation() {
    let src = r#"
long work(long n) {
    long s = 0;
    for (long i = 0; i < n; i++) s = s + i * i;
    return s;
}
int main(void) {
    long a = 0;
    for (int round = 0; round < 8; round++) {
        a = a + work(64);
        tg_discard_translations(0, 1099511627776L);
    }
    return (int)(a & 127);
}
"#;
    let m = guest_rt::build_single("discard.c", src).expect("compiles");
    let run = |src_discards: bool, cfg: VmConfig| {
        let mut vm = Vm::new(m.clone(), Box::new(NulTool), cfg);
        let mode = if src_discards { ExecMode::Dbi } else { ExecMode::Fast };
        vm.run(mode, &[])
    };
    let dbi = run(true, VmConfig::default());
    let fast = run(false, VmConfig::default());
    assert!(dbi.ok(), "{:?}", dbi.error);
    assert_eq!(dbi.exit_code, fast.exit_code, "discards must not change results");
    assert_eq!(dbi.metrics.instrs, fast.metrics.instrs);
    assert_eq!(dbi.metrics.dispatch.discard_requests, 8);
    assert!(dbi.metrics.dispatch.discarded_blocks > 0, "the discards must hit translations");
    assert!(
        dbi.metrics.translations > dbi.metrics.dispatch.discarded_blocks.min(8),
        "discarded hot code must be retranslated on next dispatch"
    );
    // Fast mode handles the same core request without any translations.
    assert_eq!(fast.metrics.dispatch.discard_requests, 8);
    assert_eq!(fast.metrics.dispatch.discarded_blocks, 0);

    // Discards must stay correct when invalidation has to walk multiple
    // shards while compile workers hold in-flight jobs: same results,
    // same instruction count, and retranslation still happens.
    let sharded = run(true, VmConfig { compile_threads: 2, cache_shards: 4, ..Default::default() });
    assert!(sharded.ok(), "{:?}", sharded.error);
    assert_eq!(sharded.exit_code, fast.exit_code);
    assert_eq!(sharded.metrics.instrs, fast.metrics.instrs);
    assert_eq!(sharded.metrics.dispatch.discard_requests, 8);
    assert!(sharded.metrics.dispatch.discarded_blocks > 0);
    assert_eq!(sharded.metrics.sched_digest, dbi.metrics.sched_digest);
}

/// A store into the code image (self-modifying code) must invalidate
/// the overlapping translation even without an explicit client request.
#[test]
fn store_to_code_discards_overlapping_translation() {
    // The guest reads its own first instruction word and writes it back
    // unchanged: semantically a no-op, but it dirties the code page.
    let src = r#"
int main(void) {
    long *code = (long *)65536; /* module code base */
    long w = *code;
    *code = w;
    return 7;
}
"#;
    let m = guest_rt::build_single("smc.c", src).expect("compiles");
    assert_eq!(m.code_base, 65536, "test assumes the default code base");
    for cfg in [
        VmConfig::default(),
        // Same invalidation with the cache sharded and a compile pool
        // racing promotions against the SMC discard.
        VmConfig { compile_threads: 2, cache_shards: 4, ..Default::default() },
    ] {
        let sharded = cfg.cache_shards > 1;
        let r = Vm::new(m.clone(), Box::new(NulTool), cfg).run(ExecMode::Dbi, &[]);
        assert!(r.ok(), "sharded={sharded}: {:?}", r.error);
        assert_eq!(r.exit_code, Some(7), "sharded={sharded}");
        assert!(
            r.metrics.dispatch.discarded_blocks > 0,
            "sharded={sharded}: the code store must discard the translation it overlaps"
        );
    }
}

mod sharded_tcache_props {
    //! Property test for the sharded translation cache: under random
    //! interleavings of inserts (compiled and IR-only), worker
    //! promotions, probes and range invalidations — across shards, with
    //! a capacity small enough to force clock eviction — the cache
    //! never serves a stale block. "Stale" means: based at a pc whose
    //! translation was discarded and not re-inserted, or a compile
    //! result promoted onto an entry whose `Arc<IrBlock>` identity has
    //! changed (SMC discard + re-lift).

    use grindcore::tcache::{CachedForm, TransCache};
    use proptest::prelude::*;
    use std::collections::{HashMap, HashSet};
    use std::sync::Arc;
    use vex_ir::{Atom, IrBlock, Stmt};

    const N_BASES: u64 = 24;

    fn base_of(idx: u8) -> u64 {
        0x1000 + (idx as u64 % N_BASES) * 0x20
    }

    fn block(base: u64) -> Arc<IrBlock> {
        let mut b = IrBlock::new(base);
        b.stmts.push(Stmt::IMark { addr: base, len: 16 });
        b.next = Atom::imm(base + 16);
        Arc::new(b)
    }

    #[derive(Clone, Debug)]
    enum Op {
        /// Insert a block with its flat form (synchronous translation).
        InsertFlat(u8),
        /// Insert IR-only (async translation awaiting its worker).
        InsertIr(u8),
        /// A worker's result lands for the pending IR at this base.
        Promote(u8),
        /// A worker's result lands for an Arc that was discarded or
        /// superseded in the meantime — must never install.
        PromoteStale,
        /// Dispatch probes this base.
        Probe(u8),
        /// SMC/client-request invalidation of a base range.
        Discard(u8, u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..32).prop_map(Op::InsertFlat),
            (0u8..32).prop_map(Op::InsertIr),
            (0u8..32).prop_map(Op::Promote),
            Just(Op::PromoteStale),
            (0u8..32).prop_map(Op::Probe),
            (0u8..32, 1u8..8).prop_map(|(lo, n)| Op::Discard(lo, n)),
        ]
    }

    fn run_ops(n_shards: usize, ops: &[Op]) {
        // Capacity 8 over up to 24 distinct bases: constant eviction.
        let c = TransCache::with_shards(8, n_shards);
        // Bases believed inserted since their last covering discard
        // (eviction may still have dropped them — that is not stale).
        let mut live: HashSet<u64> = HashSet::new();
        // The exact Arc of the latest IR-only insert per base, while it
        // is still legitimately promotable.
        let mut pending: HashMap<u64, Arc<IrBlock>> = HashMap::new();
        // Arcs whose entry was discarded or superseded: promoting these
        // must always fail.
        let mut stale: Vec<Arc<IrBlock>> = Vec::new();

        let supersede =
            |base: u64, pending: &mut HashMap<u64, Arc<IrBlock>>, stale: &mut Vec<Arc<IrBlock>>| {
                if let Some(old) = pending.remove(&base) {
                    stale.push(old);
                }
            };

        for op in ops {
            match op {
                Op::InsertFlat(i) => {
                    let base = base_of(*i);
                    if c.lookup(base).is_none() {
                        let ir = block(base);
                        let flat = Arc::new(grindcore::flat::compile(&ir));
                        c.insert(ir, Some(flat), 64);
                        live.insert(base);
                        supersede(base, &mut pending, &mut stale);
                    }
                }
                Op::InsertIr(i) => {
                    let base = base_of(*i);
                    if c.lookup(base).is_none() {
                        let ir = block(base);
                        c.insert(ir.clone(), None, 64);
                        live.insert(base);
                        supersede(base, &mut pending, &mut stale);
                        pending.insert(base, ir);
                    }
                }
                Op::Promote(i) => {
                    let base = base_of(*i);
                    if let Some(ir) = pending.get(&base) {
                        let flat = Arc::new(grindcore::flat::compile(ir));
                        // May fail (the entry can have been evicted),
                        // but a successful install on the current Arc is
                        // by definition not stale.
                        let _ = c.install_compiled(ir, flat);
                    }
                }
                Op::PromoteStale => {
                    if let Some(ir) = stale.last() {
                        let flat = Arc::new(grindcore::flat::compile(ir));
                        assert!(
                            !c.install_compiled(ir, flat),
                            "a discarded/superseded compile result must never install \
                             (base {:#x})",
                            ir.base
                        );
                    }
                }
                Op::Probe(i) => {
                    let base = base_of(*i);
                    // A miss (or eviction) is always sound; a hit must be
                    // live, at the right pc, and never post-discard.
                    if let Some((r, form)) = c.probe(base) {
                        assert!(
                            live.contains(&base),
                            "served a stale block at {base:#x} after its discard"
                        );
                        assert!(c.is_live(r), "probe returned a dead ref");
                        let got = match &form {
                            CachedForm::Flat(f) => f.base,
                            CachedForm::Ir(ir) => ir.base,
                        };
                        assert_eq!(got, base, "probe returned a block at the wrong pc");
                    }
                }
                Op::Discard(lo_i, n) => {
                    let lo = base_of(*lo_i);
                    let hi = lo + *n as u64 * 0x20;
                    c.discard_range(lo, hi);
                    let victims: Vec<u64> =
                        live.iter().copied().filter(|&b| b < hi && b + 16 > lo).collect();
                    for b in victims {
                        live.remove(&b);
                        supersede(b, &mut pending, &mut stale);
                    }
                }
            }
        }
        // Closing sweep: nothing discarded may still be served.
        for i in 0..N_BASES {
            let base = 0x1000 + i * 0x20;
            if !live.contains(&base) {
                assert!(c.probe(base).is_none(), "block at {base:#x} survived its discard");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_interleavings_never_serve_stale_blocks(
            ops in prop::collection::vec(op_strategy(), 1..80),
        ) {
            for n_shards in [1usize, 2, 4, 8] {
                run_ops(n_shards, &ops);
            }
        }
    }
}
