//! Eviction and invalidation stress tests: run the Table II mini-LULESH
//! kernel with a translation cache small enough to force constant
//! eviction and unchaining, and check that nothing observable changes —
//! then exercise the `DISCARD_TRANSLATIONS` client request and the
//! self-modifying-code store path directly.

use grindcore::tool::NulTool;
use grindcore::{ExecMode, Vm, VmConfig};
use taskgrind::{check_module, TaskgrindConfig, TaskgrindResult};
use tg_lulesh::LULESH_MC;

fn lulesh_args() -> Vec<&'static str> {
    // A reduced Table II configuration, sized for a test.
    vec!["-s", "6", "-tel", "2", "-tnl", "2", "-i", "2", "-racy"]
}

fn check_lulesh(cache_blocks: usize) -> TaskgrindResult {
    let cfg = TaskgrindConfig {
        vm: VmConfig { nthreads: 2, cache_blocks, ..Default::default() },
        ..Default::default()
    };
    let m = guest_rt::build_single("lulesh.c", LULESH_MC).expect("lulesh compiles");
    check_module(&m, &lulesh_args(), &cfg)
}

/// Constant eviction/unchaining churn must not change verdicts or
/// reports on the racy mini-LULESH run.
#[test]
fn tiny_cache_matches_default_capacity_on_lulesh() {
    let default = check_lulesh(4096);
    let tiny = check_lulesh(24);

    assert!(
        tiny.dispatch.evictions > 0,
        "a 24-block cache must thrash on LULESH (got {} evictions)",
        tiny.dispatch.evictions
    );
    assert!(tiny.dispatch.unchains > 0, "evicting chained blocks must unchain them");
    assert_eq!(default.dispatch.evictions, 0, "the default capacity must not thrash");

    assert_eq!(default.run.exit_code, tiny.run.exit_code);
    assert_eq!(default.run.deadlock, tiny.run.deadlock);
    assert_eq!(default.run.stdout, tiny.run.stdout);
    assert_eq!(default.run.metrics.instrs, tiny.run.metrics.instrs);
    assert_eq!(default.run.metrics.sched_digest, tiny.run.metrics.sched_digest);
    assert_eq!(default.accesses_recorded, tiny.accesses_recorded);
    assert!(default.n_reports() > 0, "the -racy seeded race must be found");
    assert_eq!(
        default.n_reports(),
        tiny.n_reports(),
        "report count changed under eviction pressure\ndefault:\n{}\ntiny:\n{}",
        default.render_all(),
        tiny.render_all()
    );
    // Same races at the same sites, not just the same count.
    let sites = |r: &TaskgrindResult| {
        let mut v: Vec<(String, String)> =
            r.reports.iter().map(|rep| (rep.site1.clone(), rep.site2.clone())).collect();
        v.sort();
        v
    };
    assert_eq!(sites(&default), sites(&tiny));

    // The bounded cache must actually bound resident translation bytes:
    // with eviction churn, resident bytes stay below the default run's.
    assert!(
        tiny.run.metrics.translation_bytes < default.run.metrics.translation_bytes,
        "tiny cache kept {} bytes resident vs {} at default capacity",
        tiny.run.metrics.translation_bytes,
        default.run.metrics.translation_bytes
    );
}

/// `tg_discard_translations` must invalidate translations (forcing
/// retranslation) without changing what the program computes.
#[test]
fn discard_translations_request_forces_retranslation() {
    let src = r#"
long work(long n) {
    long s = 0;
    for (long i = 0; i < n; i++) s = s + i * i;
    return s;
}
int main(void) {
    long a = 0;
    for (int round = 0; round < 8; round++) {
        a = a + work(64);
        tg_discard_translations(0, 1099511627776L);
    }
    return (int)(a & 127);
}
"#;
    let m = guest_rt::build_single("discard.c", src).expect("compiles");
    let run = |src_discards: bool| {
        let mut vm = Vm::new(m.clone(), Box::new(NulTool), VmConfig::default());
        let mode = if src_discards { ExecMode::Dbi } else { ExecMode::Fast };
        vm.run(mode, &[])
    };
    let dbi = run(true);
    let fast = run(false);
    assert!(dbi.ok(), "{:?}", dbi.error);
    assert_eq!(dbi.exit_code, fast.exit_code, "discards must not change results");
    assert_eq!(dbi.metrics.instrs, fast.metrics.instrs);
    assert_eq!(dbi.metrics.dispatch.discard_requests, 8);
    assert!(dbi.metrics.dispatch.discarded_blocks > 0, "the discards must hit translations");
    assert!(
        dbi.metrics.translations > dbi.metrics.dispatch.discarded_blocks.min(8),
        "discarded hot code must be retranslated on next dispatch"
    );
    // Fast mode handles the same core request without any translations.
    assert_eq!(fast.metrics.dispatch.discard_requests, 8);
    assert_eq!(fast.metrics.dispatch.discarded_blocks, 0);
}

/// A store into the code image (self-modifying code) must invalidate
/// the overlapping translation even without an explicit client request.
#[test]
fn store_to_code_discards_overlapping_translation() {
    // The guest reads its own first instruction word and writes it back
    // unchanged: semantically a no-op, but it dirties the code page.
    let src = r#"
int main(void) {
    long *code = (long *)65536; /* module code base */
    long w = *code;
    *code = w;
    return 7;
}
"#;
    let m = guest_rt::build_single("smc.c", src).expect("compiles");
    assert_eq!(m.code_base, 65536, "test assumes the default code base");
    let r = Vm::new(m, Box::new(NulTool), VmConfig::default()).run(ExecMode::Dbi, &[]);
    assert!(r.ok(), "{:?}", r.error);
    assert_eq!(r.exit_code, Some(7));
    assert!(
        r.metrics.dispatch.discarded_blocks > 0,
        "the code store must discard the translation it overlaps"
    );
}
