//! Differential and property tests across the whole stack:
//! randomly generated minic programs must (a) compile, (b) produce the
//! same result under the fast interpreter and under heavyweight DBI,
//! and (c) produce the same result when instrumented — instrumentation
//! must never change program semantics.

use grindcore::tool::{CountTool, NulTool};
use grindcore::{ExecMode, Vm, VmConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generate a random straight-line arithmetic program over a few locals
/// and one global array, ending in a checksum return.
fn gen_program(seed: u64, n_stmts: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut body = String::new();
    body.push_str("int g[16];\nint main(void) {\n");
    body.push_str("    long v0 = 1; long v1 = 2; long v2 = 3; long v3 = 5;\n");
    for _ in 0..n_stmts {
        let dst = rng.random_range(0..4u32);
        let a = rng.random_range(0..4u32);
        let b = rng.random_range(0..4u32);
        let op = ["+", "-", "*", "&", "|", "^", "<<", ">>"][rng.random_range(0..8usize)];
        let shift_mask = if op == "<<" || op == ">>" { " & 15" } else { "" };
        match rng.random_range(0..4u32) {
            0 => body.push_str(&format!("    v{dst} = v{a} {op} (v{b}{shift_mask});\n")),
            1 => body.push_str(&format!("    g[v{a} & 15] = v{b} {op} (v{dst}{shift_mask});\n")),
            2 => body.push_str(&format!("    v{dst} = g[v{a} & 15] + v{b};\n")),
            _ => body.push_str(&format!(
                "    if (v{a} > v{b}) v{dst} = v{dst} + 1; else v{dst} = v{dst} - 1;\n"
            )),
        }
    }
    body.push_str("    long sum = v0 ^ v1 ^ v2 ^ v3;\n");
    body.push_str("    for (int i = 0; i < 16; i++) sum = sum ^ g[i];\n");
    body.push_str("    return sum & 255;\n}\n");
    body
}

fn run(module: &tga::module::Module, mode: ExecMode) -> (Option<i64>, u64) {
    let r = Vm::new(module.clone(), Box::new(NulTool), VmConfig::default()).run(mode, &[]);
    assert!(r.ok(), "{:?}", r.error);
    (r.exit_code, r.metrics.instrs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fast interpretation ≡ DBI emulation, instruction for instruction.
    #[test]
    fn fast_and_dbi_agree_on_random_programs(seed in 0u64..10_000, n in 4usize..40) {
        let src = gen_program(seed, n);
        let module = guest_rt::build_single("rand.c", &src)
            .unwrap_or_else(|e| panic!("generated program must compile: {e}\n{src}"));
        let fast = run(&module, ExecMode::Fast);
        let dbi = run(&module, ExecMode::Dbi);
        prop_assert_eq!(fast.0, dbi.0, "exit codes diverge:\n{}", src);
        prop_assert_eq!(fast.1, dbi.1, "instruction counts diverge:\n{}", src);
    }

    /// Instrumentation is semantically transparent.
    #[test]
    fn instrumentation_is_transparent(seed in 0u64..10_000, n in 4usize..40) {
        let src = gen_program(seed, n);
        let module = guest_rt::build_single("rand.c", &src).unwrap();
        let plain = run(&module, ExecMode::Dbi);
        let counted = Vm::new(module, Box::new(CountTool::default()), VmConfig::default())
            .run(ExecMode::Dbi, &[]);
        prop_assert!(counted.ok());
        prop_assert_eq!(plain.0, counted.exit_code);
        prop_assert_eq!(plain.1, counted.metrics.instrs);
    }

    /// Compilation is deterministic: identical source ⇒ identical binary.
    #[test]
    fn compilation_is_deterministic(seed in 0u64..10_000) {
        let src = gen_program(seed, 12);
        let a = guest_rt::build_single("d.c", &src).unwrap();
        let b = guest_rt::build_single("d.c", &src).unwrap();
        prop_assert_eq!(a.to_bytes(), b.to_bytes());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The iropt-style optimization pass is semantics-preserving.
    #[test]
    fn ir_optimizer_is_transparent(seed in 0u64..10_000, n in 4usize..40) {
        let src = gen_program(seed, n);
        let module = guest_rt::build_single("rand.c", &src).unwrap();
        let cfg_on = VmConfig { optimize_ir: true, ..Default::default() };
        let cfg_off = VmConfig { optimize_ir: false, ..Default::default() };
        let on = Vm::new(module.clone(), Box::new(NulTool), cfg_on).run(ExecMode::Dbi, &[]);
        let off = Vm::new(module, Box::new(NulTool), cfg_off).run(ExecMode::Dbi, &[]);
        prop_assert!(on.ok() && off.ok());
        prop_assert_eq!(on.exit_code, off.exit_code, "{}", src);
        prop_assert_eq!(on.metrics.instrs, off.metrics.instrs);
    }
}
