//! tg-obs integration: structured tracing must be invisible to every
//! verdict-bearing output, and a traced run must export a well-formed
//! Chrome-trace/Perfetto timeline carrying both the host pipeline
//! phases and the guest task-segment track.
//!
//! The trace ring is process-global, so the tests in this binary
//! serialize on a mutex (cargo runs `#[test]`s of one binary in
//! parallel threads).

use std::sync::Mutex;
use taskgrind::{check_module, TaskgrindConfig};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const RACY_TASKS: &str = r#"
int main(void) {
    int *x = (int*) malloc(4 * sizeof(int));
    #pragma omp parallel
    {
        #pragma omp single
        {
            for (int i = 0; i < 8; i++) {
                #pragma omp task shared(x)
                x[i % 4] = i;
            }
            #pragma omp taskwait
        }
    }
    printf("%d\n", x[0]);
    return 0;
}
"#;

const ORDERED_DEPS: &str = r#"
int main(void) {
    int a = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(out: a)
            a = 1;
            #pragma omp task depend(in: a)
            printf("%d\n", a);
        }
    }
    return 0;
}
"#;

const CRITICAL_LOOP: &str = r#"
int main(void) {
    int sum = 0;
    #pragma omp parallel
    {
        #pragma omp critical
        sum = sum + 1;
        #pragma omp barrier
    }
    printf("%d\n", sum);
    return 0;
}
"#;

fn run(name: &str, src: &str, streaming: bool) -> taskgrind::TaskgrindResult {
    let m = guest_rt::build_single(name, src).expect("compiles");
    let cfg = TaskgrindConfig {
        vm: grindcore::VmConfig { nthreads: 2, ..Default::default() },
        streaming,
        ..Default::default()
    };
    check_module(&m, &[], &cfg)
}

/// Table-style differential: enabling the trace ring must leave every
/// verdict, counter and rendered report bit-identical.
#[test]
fn tracing_is_invisible_to_verdicts() {
    let _g = lock();
    for (name, src, streaming) in [
        ("racy_tasks.c", RACY_TASKS, false),
        ("racy_tasks.c", RACY_TASKS, true),
        ("ordered_deps.c", ORDERED_DEPS, false),
        ("critical_loop.c", CRITICAL_LOOP, false),
    ] {
        tg_obs::trace::shutdown();
        let plain = run(name, src, streaming);

        tg_obs::trace::init_default();
        let traced = run(name, src, streaming);
        let trace = tg_obs::trace::export_chrome_json();
        tg_obs::trace::shutdown();

        let ctx = format!("{name} streaming={streaming}");
        assert_eq!(plain.render_all(), traced.render_all(), "{ctx}: report text");
        assert_eq!(plain.n_reports(), traced.n_reports(), "{ctx}: report count");
        assert_eq!(plain.analysis.candidates, traced.analysis.candidates, "{ctx}: candidates");
        assert_eq!(plain.accesses_recorded, traced.accesses_recorded, "{ctx}: accesses recorded");
        tg_obs::trace::validate_chrome_trace(&trace)
            .unwrap_or_else(|e| panic!("{ctx}: invalid trace: {e}"));
    }
}

/// A traced run exports well-formed Chrome-trace JSON whose spans cover
/// the host pipeline (recording, translation, analysis, report) and
/// whose guest track carries the task-segment timeline.
#[test]
fn traced_run_exports_host_and_guest_tracks() {
    let _g = lock();
    tg_obs::trace::shutdown();
    tg_obs::trace::init_default();
    let r = run("racy_tasks.c", RACY_TASKS, true);
    assert!(r.n_reports() > 0, "the workload must report races");
    let trace = tg_obs::trace::export_chrome_json();
    tg_obs::trace::shutdown();

    let s = tg_obs::trace::validate_chrome_trace(&trace).expect("well-formed trace");
    assert!(s.begins > 0 && s.begins == s.ends, "balanced spans: {s:?}");
    assert!(s.pids.contains(&u64::from(tg_obs::trace::PID_HOST)), "host track present");
    assert!(s.pids.contains(&u64::from(tg_obs::trace::PID_GUEST)), "guest track present");
    // Host pipeline phases.
    for phase in ["recording", "translate", "lift", "instrument", "analysis", "report"] {
        assert!(s.names.contains(phase), "missing host phase span `{phase}`: {:?}", s.names);
    }
    // Guest task-segment timeline from the runtime's client requests.
    assert!(s.names.contains("parallel"), "missing guest parallel span: {:?}", s.names);
    assert!(
        s.names.iter().any(|n| n.starts_with("task ") || n.starts_with("implicit task")),
        "missing guest task spans: {:?}",
        s.names
    );
    // The streaming engine stamps epoch instants on the retirement track.
    assert!(
        s.names.iter().any(|n| n.starts_with("epoch ")),
        "missing retirement epochs: {:?}",
        s.names
    );
}

/// A traced async-compile run names one timeline track per compile
/// worker and carries the `compile` spans on those tracks.
#[test]
fn traced_async_compile_run_names_worker_tracks() {
    let _g = lock();
    tg_obs::trace::shutdown();
    tg_obs::trace::init_default();
    let m = guest_rt::build_single("racy_tasks.c", RACY_TASKS).expect("compiles");
    let cfg = TaskgrindConfig {
        vm: grindcore::VmConfig { nthreads: 2, compile_threads: 2, ..Default::default() },
        ..Default::default()
    };
    let r = check_module(&m, &[], &cfg);
    let trace = tg_obs::trace::export_chrome_json();
    tg_obs::trace::shutdown();

    assert_eq!(r.run.metrics.compile.workers, 2, "both workers must spawn");
    let s = tg_obs::trace::validate_chrome_trace(&trace).expect("well-formed trace");
    assert!(s.names.contains("compile"), "missing compile spans: {:?}", s.names);
    // Track names arrive as thread-metadata events, which the validator
    // skips when collecting span names — assert them on the raw JSON.
    for worker in ["compile.worker0", "compile.worker1"] {
        assert!(
            trace.contains(&format!("\"{worker}\"")),
            "missing worker track `{worker}` in exported trace"
        );
    }
}

/// With the ring disabled (the default), the hooks stay cold: nothing
/// is buffered and the exporter emits an empty-but-valid trace.
#[test]
fn disabled_tracing_buffers_nothing() {
    let _g = lock();
    tg_obs::trace::shutdown();
    let _ = run("ordered_deps.c", ORDERED_DEPS, false);
    assert!(!tg_obs::trace::enabled());
    assert_eq!(tg_obs::trace::buffered(), 0);
    let trace = tg_obs::trace::export_chrome_json();
    let s = tg_obs::trace::validate_chrome_trace(&trace).expect("empty trace is valid");
    assert_eq!(s.begins, 0);
    assert_eq!(s.instants, 0);
}
