//! Run the same program under all four detectors (the Table I column
//! set) and compare what each sees — a miniature of experiment E1.
//!
//! Run with: `cargo run --example tool_comparison`

use grindcore::VmConfig;
use minicc::SourceFile;
use taskgrind::{check_module, TaskgrindConfig};
use tg_baselines::{archer::run_archer, romp::run_romp, tasksan::run_tasksan};

/// DRB173-style non-sibling dependence: racy, and a differentiator —
/// only a spec-accurate sibling-scoped dependence analysis catches it.
const NON_SIBLING: &str = r#"
int x;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task
            {
                #pragma omp task depend(out: x)
                x = 1;
                #pragma omp taskwait
            }
            #pragma omp task
            {
                #pragma omp task depend(out: x)
                x = 2;
                #pragma omp taskwait
            }
        }
    }
    return 0;
}
"#;

fn main() {
    let vm = VmConfig { nthreads: 2, ..Default::default() };
    let plain = guest_rt::build_single("nonsibling.c", NON_SIBLING).expect("compiles");
    let tsan = guest_rt::build_program_tsan(&[SourceFile::new("nonsibling.c", NON_SIBLING)])
        .expect("compiles");

    println!("program: DRB173-style non-sibling task dependence (ground truth: RACY)\n");

    let a = run_archer(&tsan, &[], &vm);
    println!("Archer        : {} report(s)  [vector clocks, thread-centric]", a.n_reports);

    let t = run_tasksan(&tsan, &[], &vm);
    println!("TaskSanitizer : {} report(s)  [segment graph, global dep matching]", t.n_reports);

    let r = run_romp(&plain, &[], &vm);
    println!("ROMP          : {} report(s)  [access history, global dep matching]", r.n_reports);

    let cfg = TaskgrindConfig { vm, ..Default::default() };
    let tg = check_module(&plain, &[], &cfg);
    println!("Taskgrind     : {} report(s)  [segment graph, sibling-scoped deps]", tg.n_reports());

    println!();
    if tg.n_reports() > 0 {
        println!("Taskgrind's report:\n{}", tg.render_all());
    }
    assert!(tg.n_reports() > 0, "only the sibling-scoped analysis catches the non-sibling race");
}
