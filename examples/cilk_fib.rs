//! Cilk support (paper §III-A, "work-in-progress"): `cilk_spawn` /
//! `cilk_sync` lower onto the tasking runtime, so Taskgrind sees a
//! single parallel region containing all tasks (paper Eq. 1 discussion).
//!
//! Run with: `cargo run --example cilk_fib`

use taskgrind::{check_module, TaskgrindConfig};

const GOOD: &str = r#"
int fib(int n) {
    if (n < 2) return n;
    int a = cilk_spawn fib(n - 1);
    int b = fib(n - 2);
    cilk_sync;
    return a + b;
}
int main(void) {
    printf("fib(12) = %d\n", fib(12));
    return 0;
}
"#;

const RACY: &str = r#"
int counter;
int bump(int k) { counter = counter + k; return counter; }
int main(void) {
    int a = cilk_spawn bump(1);
    int b = cilk_spawn bump(2);   // both spawned calls write `counter`
    cilk_sync;
    printf("counter = %d\n", counter);
    return 0;
}
"#;

fn main() {
    let cfg = TaskgrindConfig::default();

    let m = guest_rt::build_single("fib.cilk", GOOD).expect("compiles");
    let r = check_module(&m, &[], &cfg);
    print!("{}", r.run.stdout_str());
    assert!(r.run.stdout_str().contains("fib(12) = 144"));
    // Recursive spawns reuse stack frames across sibling subtrees; the
    // reports below are the paper's own residual false positive ("
    // conflicting sibling tasks on a memory location in their parent
    // segment stack frame", V-A) — every one is in stack memory.
    println!(
        "clean cilk fib: {} report(s), all in reused stack frames (known FP, paper V-A)\n",
        r.n_reports()
    );
    assert!(
        r.reports.iter().all(|rep| rep.region == "stack"),
        "clean fib may only trip the known stack-frame FP"
    );

    let m = guest_rt::build_single("racy.cilk", RACY).expect("compiles");
    let r = check_module(&m, &[], &cfg);
    print!("{}", r.run.stdout_str());
    println!("racy cilk spawns: {} report(s)", r.n_reports());
    println!("{}", r.render_all());
    assert!(r.n_reports() > 0, "two spawned writers of `counter` race");
}
