//! Regenerates the paper's illustrations: the segment graph of a small
//! fork/join program as Graphviz DOT (Fig. 1) and the write interval
//! tree of a segment (Fig. 3).
//!
//! Run with: `cargo run --example segment_graph_dot > segments.dot`
//! Then: `dot -Tpng segments.dot -o segments.png`

use taskgrind::itree::IntervalTree;
use taskgrind::{check_module, TaskgrindConfig};

const PROGRAM: &str = r#"
int main(void) {
    int *a = (int*) malloc(64 * sizeof(int));
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single
        {
            #pragma omp task depend(out: a[0]) shared(a)
            { for (int i = 0; i < 32; i++) a[i] = i; }
            #pragma omp task depend(out: a[32]) shared(a)
            { for (int i = 32; i < 64; i++) a[i] = i; }
            #pragma omp task depend(in: a[0]) depend(in: a[32]) shared(a)
            { int s = 0; for (int i = 0; i < 64; i++) s += a[i]; }
        }
    }
    return 0;
}
"#;

fn main() {
    let module = guest_rt::build_single("fig1.c", PROGRAM).expect("compiles");
    let result = check_module(&module, &[], &TaskgrindConfig::default());

    // Fig. 1: the segment graph in DOT form (stdout).
    println!("{}", result.graph.to_dot());

    // Fig. 3: dump one task segment's write interval tree (stderr).
    eprintln!("\nper-segment write interval trees (dense sweeps collapse):");
    for seg in &result.graph.segments {
        if seg.writes.is_empty() {
            continue;
        }
        let intervals: Vec<String> =
            seg.writes.iter().map(|(lo, hi)| format!("[{lo:#x}, {hi:#x})")).collect();
        eprintln!(
            "  segment {} ({}): {} accesses -> {} interval(s): {}",
            seg.id,
            seg.kind,
            seg.writes.accesses(),
            seg.writes.len(),
            intervals.join(" ")
        );
    }

    // A standalone Fig. 3 interval tree, as in the paper's figure.
    let mut t = IntervalTree::new();
    for (lo, hi) in [(0x10u64, 0x18u64), (0x18, 0x20), (0x40, 0x48), (0x30, 0x38)] {
        t.insert(lo, hi);
    }
    eprintln!(
        "\nexample write tree: {} intervals covering {} bytes after {} inserts",
        t.len(),
        t.covered_bytes(),
        t.accesses()
    );
    assert!(result.graph.n_nodes() > 5);
}
