//! Quickstart: compile an OpenMP task program and check it with
//! Taskgrind in a dozen lines.
//!
//! Run with: `cargo run --example quickstart`

use taskgrind::{check_module, TaskgrindConfig};

const PROGRAM: &str = r#"
int main(void) {
    int *data = (int*) malloc(8 * sizeof(int));

    #pragma omp parallel num_threads(2)
    {
        #pragma omp single
        {
            // producer with a declared output dependence
            #pragma omp task depend(out: data[0]) shared(data)
            data[0] = 42;

            // consumer... that forgot its input dependence
            #pragma omp task shared(data)
            printf("data[0] = %d\n", data[0]);
        }
    }
    return 0;
}
"#;

fn main() {
    // 1. Compile against the bundled guest runtime (libc + libomp).
    let module = guest_rt::build_single("quickstart.c", PROGRAM).expect("program compiles");

    // 2. Run under heavyweight DBI and analyze the segment graph.
    let result = check_module(&module, &[], &TaskgrindConfig::default());

    // 3. The program ran normally (Taskgrind is an observer)...
    println!("guest stdout:");
    print!("{}", result.run.stdout_str());
    println!(
        "\n{} guest instructions, {} segments, {} heap blocks tracked",
        result.run.metrics.instrs,
        result.graph.n_nodes(),
        result.blocks.len()
    );

    // 4. ...and the missing dependence is reported with source locations.
    println!("\n{} determinacy race report(s):\n", result.n_reports());
    println!("{}", result.render_all());

    assert!(result.n_reports() > 0, "the missing dependence must be caught");
}
