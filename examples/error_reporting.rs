//! Error-report comparison (paper §V-C, Listings 4–6): the same
//! erroneous program reported by ROMP (raw addresses, no source info)
//! and by Taskgrind (segments, block, allocation site — all with debug
//! information).
//!
//! Run with: `cargo run --example error_reporting`

use grindcore::VmConfig;
use taskgrind::{check_module, TaskgrindConfig};
use tg_baselines::romp::run_romp;

/// Listing 4: task.c — two tasks concurrently writing x[0].
const TASK_C: &str = r#"int main(void)
{
    int *x = (int*) malloc(2 * sizeof(int));
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task
            x[0] = 42;

            #pragma omp task
            x[0] = 43;
        }
    }
    return 0;
}
"#;

fn main() {
    let module = guest_rt::build_single("task.c", TASK_C).expect("compiles");
    let vm = VmConfig { nthreads: 2, ..Default::default() };

    println!("===== Listing 4: task.c =====");
    println!("{TASK_C}");

    // ROMP-style report (Listing 5): an address, nothing else.
    let romp = run_romp(&module, &[], &vm);
    println!("===== Listing 5: ROMP-style report =====");
    for r in &romp.reports {
        println!("{r}");
    }

    // Taskgrind report (Listing 6): segments by source line, conflicting
    // block with size and allocation site.
    let cfg = TaskgrindConfig { vm, ..Default::default() };
    let tg = check_module(&module, &[], &cfg);
    println!("\n===== Listing 6: Taskgrind report =====");
    print!("{}", tg.render_all());

    assert!(romp.n_reports > 0 && tg.n_reports() > 0);
    assert!(tg.render_all().contains("task.c:"), "Taskgrind reports carry debug info");
}
