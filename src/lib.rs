//! Workspace umbrella crate: re-exports for examples and integration tests.
pub use grindcore;
pub use guest_rt;
pub use minicc;
pub use taskgrind;
pub use tg_baselines;
pub use tg_drb;
pub use tg_lulesh;
pub use tga;
pub use vex_ir;
