//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic `StdRng` (splitmix64) with the
//! `SeedableRng::seed_from_u64` / `RngExt::{random, random_range}`
//! surface the workspace uses. Determinism per seed is the only
//! property callers rely on (seeded schedulers, generated test
//! programs); statistical quality just needs to be decent.

use std::ops::Range;

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// splitmix64: a small, fast, full-period 64-bit generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

/// Types producible from a raw 64-bit draw.
pub trait FromRandom {
    fn from_u64(bits: u64) -> Self;
}

macro_rules! impl_from_random {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_u64(bits: u64) -> $t {
                bits as $t
            }
        }
    )*};
}
impl_from_random!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for bool {
    fn from_u64(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Integer types samplable uniformly from a half-open range.
pub trait SampleRange: Sized {
    fn sample(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(bits: u64, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty random_range");
                let span = (range.end - range.start) as u64;
                range.start + (bits % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, mirroring rand 0.9+'s `Rng`.
pub trait RngExt: RngCore {
    fn random<T: FromRandom>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    fn random_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_eq!(va, vb);

        let mut c = StdRng::seed_from_u64(43);
        let vc: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(0..3usize);
            assert!(w < 3);
        }
    }

    #[test]
    fn output_spread() {
        // all 8 low-3-bit buckets hit within a modest draw count
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[r.random_range(0u32..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
