//! Offline stand-in for `crossbeam`.
//!
//! Only `crossbeam::scope` is used (fan-out in the parallel race
//! analysis), and std has had scoped threads since 1.63 — this adapts
//! `std::thread::scope` to crossbeam's callback signature, where the
//! spawned closure receives the scope again for nested spawns.

use std::any::Any;

pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> ScopeResult<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
    }
}

/// Run `f` with a thread scope; all spawned threads are joined before
/// this returns. Unlike std, the result is wrapped in `Ok` (crossbeam
/// reports panics of *unjoined* children as `Err`; std's scope
/// re-raises them, so the error arm here is vestigial but keeps caller
/// `.unwrap()`s compiling).
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn fan_out_and_join() {
        let data: Vec<u64> = (0..100).collect();
        let total: u64 = crate::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in data.chunks(24) {
                handles.push(scope.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 99 * 100 / 2);
    }

    #[test]
    fn nested_spawn() {
        let n = crate::scope(|scope| {
            scope.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2).join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
