//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with
//! an optional `#![proptest_config(...)]` header, integer-range and
//! tuple strategies, `prop::collection::vec`, and the `prop_assert*`
//! macros. Sampling is deterministic (seeded per test name), there is
//! no shrinking — a failing case panics with the sampled values via the
//! normal assert message.

use std::ops::Range;

/// Deterministic splitmix64 generator for strategy sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seed a generator from a test's name so every test draws an
/// independent but reproducible stream.
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325; // FNV-1a
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(h)
}

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. The real crate separates strategies from value
/// trees to support shrinking; without shrinking, sampling is enough.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strat: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strat.sample(rng))
    }
}

/// `any::<T>()` for the primitive types the workspace samples.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_any_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_signed!(i8, i16, i32, i64);

/// Uniform choice among same-valued strategies; the boxed arms are what
/// `prop_oneof!` builds. (The real crate supports weighted arms — the
/// workspace only uses the uniform form.)
pub struct OneOf<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Boxing helper for `prop_oneof!` — names the trait-object type so
/// every arm's `Value` unifies.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strat)),+])
    };
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// Always-the-same-value strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start).max(1) as u64;
                let len = self.size.start + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Any, Just, Map, OneOf, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The test-definition macro. Each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` (the attribute is written by the caller, as in
/// the real crate) that samples fresh arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_sample_in_bounds() {
        let mut rng = crate::test_rng("bounds");
        for _ in 0..200 {
            let v = (5u64..10).sample(&mut rng);
            assert!((5..10).contains(&v));
            let (a, b) = (0u8..4, 1usize..3).sample(&mut rng);
            assert!(a < 4 && (1..3).contains(&b));
            let xs = prop::collection::vec(0u32..7, 2..6).sample(&mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 7));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro wires config, strategies, and assertions together.
        #[test]
        fn macro_smoke(x in 0u64..100, ys in prop::collection::vec(0u8..3, 0..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.iter().filter(|&&y| y > 2).count(), 0, "ys={:?}", ys);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(x in 1u32..50) {
            prop_assert_ne!(x, 0);
        }
    }

    #[test]
    fn oneof_map_and_any_sample_all_arms() {
        let strat = prop_oneof![
            Just(0u32),
            (1u32..5).prop_map(|x| x + 100),
            any::<bool>().prop_map(|b| if b { 200u32 } else { 201 }),
        ];
        let mut rng = crate::test_rng("oneof");
        let mut seen = [false; 3];
        for _ in 0..200 {
            match strat.sample(&mut rng) {
                0 => seen[0] = true,
                x if (101..105).contains(&x) => seen[1] = true,
                200 | 201 => seen[2] = true,
                other => panic!("out-of-space sample {other}"),
            }
        }
        assert!(seen.iter().all(|&s| s), "arms hit: {seen:?}");
    }
}
