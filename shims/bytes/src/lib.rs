//! Offline stand-in for the `bytes` crate.
//!
//! Implements only the byte-buffer API the TGA module container format
//! uses: `BytesMut` as an append-only builder, `Bytes` as a frozen
//! immutable buffer, `BufMut` for little-endian writes, and `Buf` for
//! little-endian reads over an advancing `&[u8]` cursor.

use std::ops::Deref;

/// Immutable byte buffer, produced by [`BytesMut::freeze`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(n))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

/// Little-endian append operations.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Little-endian read operations over an advancing cursor.
///
/// Reading past the end panics, as in the real crate; callers check
/// `remaining()` first.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = BytesMut::new();
        b.put_slice(b"hdr");
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        let frozen = b.freeze();

        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.remaining(), 3 + 1 + 4 + 8);
        let mut hdr = [0u8; 3];
        cur.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr");
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cur.remaining(), 0);
    }
}
