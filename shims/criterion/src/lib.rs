//! Offline stand-in for `criterion`.
//!
//! A small wall-clock harness with criterion's API shape:
//! `benchmark_group` / `sample_size` / `bench_function` / `iter`, plus
//! the `criterion_group!` / `criterion_main!` macros. Each benchmark
//! runs one warmup iteration, then `sample_size` timed iterations, and
//! prints min / mean / max per-iteration time. No statistics beyond
//! that — the numbers in EXPERIMENTS.md are read from this output.

use std::time::{Duration, Instant};

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: self.default_sample_size }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.default_sample_size;
        run_one(&id.into(), n, f);
        self
    }
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // CI smoke runs override the sample count (e.g. TG_BENCH_SAMPLES=1)
    // so bench code is exercised without paying for real measurements.
    let sample_size = std::env::var("TG_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(sample_size);
    let mut b = Bencher { sample_size, samples: Vec::new() };
    f(&mut b);
    let s = &b.samples;
    if s.is_empty() {
        println!("{id:<48} (no samples — did the closure call iter()?)");
        return;
    }
    let min = s.iter().min().unwrap();
    let max = s.iter().max().unwrap();
    let mean = s.iter().sum::<Duration>() / s.len() as u32;
    println!(
        "{id:<48} [{} {} {}] {} samples",
        fmt_dur(*min),
        fmt_dur(mean),
        fmt_dur(*max),
        s.len()
    );
}

pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time the routine: one untimed warmup, then `sample_size` timed
    /// runs (each sample is a single invocation).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Re-export mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut ran = 0;
        g.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        // 1 warmup + 3 samples
        assert_eq!(ran, 4);
    }
}
