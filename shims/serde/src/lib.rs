//! Offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! forward-looking annotations — nothing is serialized — so the traits
//! are markers and the derives (re-exported from the shim
//! `serde_derive`) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}
