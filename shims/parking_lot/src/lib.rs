//! Offline stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` primitives with parking_lot's
//! no-poisoning API (guards are returned directly, a poisoned lock is
//! recovered rather than propagated).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(vec![1, 2]);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }
}
